"""One callable per paper figure: runs the experiment, returns the rows.

The pytest benchmarks under ``benchmarks/`` call these and assert the
paper's qualitative claims; the CLI (``python -m repro``) calls them
directly. Each returns ``(rows, table_text)`` and the caller decides what
to do with them (print, persist, assert).
"""

from __future__ import annotations

from ..workload.rates import ModulatedRate, ScaledRate, StepRate
from .plots import ascii_multi_series
from .report import format_table, series_to_rows
from .runner import (
    run_coordinator_failure_timeseries,
    run_lcr_point,
    run_mencius_point,
    run_multiring_point,
    run_partitioned_single_ring_point,
    run_single_ring_point,
    run_spread_point,
    run_two_ring_parameter_point,
    run_two_ring_timeseries,
)

__all__ = ["FIGURES", "run_figure"]

# ---------------------------------------------------------------------------
# Shared λ-experiment scaffolding (compressed timeline, see EXPERIMENTS.md)
# ---------------------------------------------------------------------------
STEP_SECONDS = 8.0
LAMBDA_DURATION = 5 * STEP_SECONDS
MESSAGE_SIZE = 8 * 1024


def _msgs(mbps: float) -> float:
    return mbps * 1e6 / 8.0 / MESSAGE_SIZE


def _stepped(levels: list[float]) -> StepRate:
    return StepRate([(i * STEP_SECONDS, _msgs(v)) for i, v in enumerate(levels)])


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------
def figure1():
    """In-memory vs Recoverable Ring Paxos (latency vs throughput)."""
    rows = []
    for durable, offered_list in (
        (False, [100, 300, 500, 650, 700, 750]),
        (True, [100, 200, 300, 380, 420, 500]),
    ):
        for offered in offered_list:
            r = run_single_ring_point(offered, durable=durable)
            rows.append(
                (r.label, offered, r.delivered_mbps, r.latency_ms, r.cpu_pct,
                 r.extra["disk_util_pct"])
            )
    table = format_table(
        "Figure 1: latency vs delivery throughput per server (single Ring Paxos)",
        ["mode", "offered Mbps", "delivered Mbps", "latency ms", "coord CPU %", "disk %"],
        rows,
    )
    return rows, table


def figure2():
    """Partitioned dummy service over one Ring Paxos instance."""
    rows = []
    for n in (1, 2, 4, 8):
        r = run_partitioned_single_ring_point(n)
        rows.append((n, r.delivered_mbps, r.extra["per_partition_mbps"], r.cpu_pct))
    table = format_table(
        "Figure 2: overall throughput of a partitioned service on one Ring Paxos",
        ["partitions", "overall Mbps", "per-partition Mbps", "coord CPU %"],
        rows,
    )
    return rows, table


def figure5():
    """Scalability: M-RP (RAM/DISK) vs Spread, Ring Paxos, LCR."""
    rows = []
    for n in (1, 2, 4, 8):
        r = run_multiring_point(n, durable=False)
        rows.append(("RAM M-RP", n, r.delivered_mbps / 1e3, r.msgs_per_s, r.latency_ms, r.cpu_pct))
    for n in (1, 2, 4, 8):
        r = run_multiring_point(n, durable=True)
        rows.append(("DISK M-RP", n, r.delivered_mbps / 1e3, r.msgs_per_s, r.latency_ms, r.cpu_pct))
    for n in (1, 2, 4, 8):
        r = run_partitioned_single_ring_point(n)
        rows.append(("Ring Paxos", n, r.delivered_mbps / 1e3, 0.0, r.latency_ms, r.cpu_pct))
    for n in (1, 2, 4, 8):
        r = run_spread_point(n)
        rows.append(("Spread", n, r.delivered_mbps / 1e3, r.msgs_per_s, r.latency_ms, r.cpu_pct))
    for n in (2, 4, 8, 16):
        r = run_lcr_point(n)
        rows.append(("LCR", n, r.delivered_mbps / 1e3, r.msgs_per_s, r.latency_ms, r.cpu_pct))
    table = format_table(
        "Figure 5: scalability, one group per learner",
        ["system", "partitions/nodes", "Gbps", "msg/s", "latency ms", "max CPU %"],
        rows,
    )
    return rows, table


def figure6():
    """Every learner subscribes to all groups (ingress-bound)."""
    rows = []
    for durable in (False, True):
        for n in (1, 2, 4, 8):
            r = run_multiring_point(n, durable=durable, subscribe_all=True)
            rows.append(
                ("DISK M-RP" if durable else "RAM M-RP", n, r.delivered_mbps,
                 r.msgs_per_s, r.latency_ms, r.extra["learner_ingress_pct"],
                 r.extra["learner_cpu_pct"])
            )
    table = format_table(
        "Figure 6: every learner subscribes to all groups",
        ["system", "rings", "Mbps", "msg/s", "latency ms", "ingress %", "learner CPU %"],
        rows,
    )
    return rows, table


def figure7():
    """The effect of Delta."""
    rows = []
    for delta in (1e-3, 10e-3, 100e-3):
        for offered in (50, 200, 400, 800):
            r = run_two_ring_parameter_point(offered, delta=delta, burst=8)
            rows.append((f"{delta * 1e3:g} ms", offered, r.delivered_mbps, r.latency_ms, r.cpu_pct))
    table = format_table(
        "Figure 7: the effect of Delta (2 rings, learner on both)",
        ["Delta", "offered Mbps", "delivered Mbps", "latency ms", "coord CPU %"],
        rows,
    )
    return rows, table


def figure8():
    """The effect of M."""
    rows = []
    for m in (1, 10, 100):
        for offered in (200, 400, 600, 800):
            r = run_two_ring_parameter_point(offered, m=m, burst=1, jitter=0.0)
            rows.append((m, offered, r.delivered_mbps, r.latency_ms, r.extra["learner_cpu_pct"]))
    table = format_table(
        "Figure 8: the effect of M (2 rings, learner on both)",
        ["M", "offered Mbps", "delivered Mbps", "latency ms", "learner CPU %"],
        rows,
    )
    return rows, table


def _lambda_series_rows(results):
    rows = []
    for lam, res in results.items():
        state = "halted" if res.extra["halted"] else "ok"
        rows.append((f"{lam:g}", state, "", ""))
        for t, v in series_to_rows(res.latency_ms, every=4):
            rows.append((f"{lam:g}", f"t={t:g}s", f"lat={v:.2f}ms", ""))
    return rows


def _lambda_latency_plot(results) -> str:
    return ascii_multi_series(
        {f"lambda={lam:g} lat(ms)": res.latency_ms for lam, res in results.items()},
        title="latency over time (sparklines, max-pooled)",
    )


def figure9():
    """Lambda with equal constant rates."""
    levels = [25, 75, 150, 225, 310]
    results = {
        lam: run_two_ring_timeseries(
            (_stepped(levels), _stepped(levels)), lambda_rate=lam,
            duration=LAMBDA_DURATION, message_size=MESSAGE_SIZE,
        )
        for lam in (0.0, 1000.0, 5000.0)
    }
    rows = _lambda_series_rows(results)
    table = format_table(
        "Figure 9: lambda with equal constant rates (stepped every 8 s)",
        ["lambda", "state/t", "latency", ""],
        rows,
    )
    table += "\n\n" + _lambda_latency_plot(results)
    return results, table


def figure10():
    """Lambda with 2:1 skewed constant rates."""
    levels = [50, 150, 300, 450, 520]
    results = {
        lam: run_two_ring_timeseries(
            (_stepped(levels), ScaledRate(_stepped(levels), 0.5)), lambda_rate=lam,
            duration=LAMBDA_DURATION, message_size=MESSAGE_SIZE, buffer_limit=15_000,
        )
        for lam in (1000.0, 5000.0, 9000.0)
    }
    rows = _lambda_series_rows(results)
    table = format_table(
        "Figure 10: lambda with 2:1 skewed constant rates",
        ["lambda", "state/t", "latency", ""],
        rows,
    )
    table += "\n\n" + _lambda_latency_plot(results)
    return results, table


def figure11():
    """Lambda with oscillating 2:1 rates."""
    levels = [50, 130, 260, 330, 390]
    results = {}
    for lam in (5000.0, 9000.0, 12000.0):
        fast = ModulatedRate(_stepped(levels), amplitude=0.6, period=8.0)
        slow = ModulatedRate(ScaledRate(_stepped(levels), 0.5), amplitude=0.6, period=8.0)
        results[lam] = run_two_ring_timeseries(
            (fast, slow), lambda_rate=lam, duration=LAMBDA_DURATION,
            message_size=MESSAGE_SIZE, buffer_limit=15_000,
        )
    rows = _lambda_series_rows(results)
    table = format_table(
        "Figure 11: lambda with oscillating 2:1 rates",
        ["lambda", "state/t", "latency", ""],
        rows,
    )
    table += "\n\n" + _lambda_latency_plot(results)
    return results, table


def figure12():
    """Coordinator failure at t=20 s, restart 3 s later."""
    res = run_coordinator_failure_timeseries(
        rate_msgs_per_s=4000.0, fail_at=20.0, restart_after=3.0, duration=32.0
    )
    delivered = dict((round(t), v) for t, v in res.delivered_mbps)
    rx1 = dict((round(t), v) for t, v in res.multicast_mbps[0])
    rx2 = dict((round(t), v) for t, v in res.multicast_mbps[1])
    rows = [
        (t, f"{rx1.get(t, 0):.0f}", f"{rx2.get(t, 0):.0f}", f"{delivered.get(t, 0):.0f}")
        for t in range(32)
    ]
    table = format_table(
        "Figure 12: coordinator of ring 1 fails at t=20s, restarts at t=23s",
        ["t (s)", "ring1 recv Mbps", "ring2 recv Mbps", "delivered Mbps"],
        rows,
    )
    table += "\n\n" + ascii_multi_series(
        {
            "ring1 recv Mbps": res.multicast_mbps[0],
            "ring2 recv Mbps": res.multicast_mbps[1],
            "delivered Mbps ": res.delivered_mbps,
        },
        title="throughput over time (sparklines)",
    )
    return res, table


def related_mencius():
    """Related work: Mencius vs Multi-Ring Paxos (Section V)."""
    rows = []
    for n in (2, 4, 8):
        r = run_mencius_point(n)
        rows.append(("Mencius", n, r.delivered_mbps / 1e3, r.latency_ms, r.cpu_pct))
    for n in (2, 4, 8):
        r = run_multiring_point(n, durable=False)
        rows.append(("RAM M-RP", n, r.delivered_mbps / 1e3, r.latency_ms, r.cpu_pct))
    table = format_table(
        "Related work: Mencius vs Multi-Ring Paxos",
        ["system", "servers/rings", "Gbps", "latency ms", "max CPU %"],
        rows,
    )
    return rows, table


FIGURES = {
    "fig1": figure1,
    "fig2": figure2,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
    "mencius": related_mencius,
}


def run_figure(name: str):
    """Run one named figure; returns (data, table_text)."""
    try:
        fn = FIGURES[name]
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; available: {', '.join(sorted(FIGURES))}"
        ) from None
    return fn()
