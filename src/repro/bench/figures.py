"""One callable per paper figure: builds the sweep, returns the rows.

The pytest benchmarks under ``benchmarks/`` call these and assert the
paper's qualitative claims; the CLI (``python -m repro``) calls them
directly. Each returns ``(rows, table_text)`` and the caller decides what
to do with them (print, persist, assert).

Sweep construction is declarative: every figure builds a list of
:class:`~repro.parallel.spec.Spec` task specs (picklable, hashable
descriptions of runner calls) and hands them to
:func:`~repro.parallel.pool.run_sweep`, which executes them under the
process-wide executor configuration — serial and in-process by default
(so direct calls behave exactly like the old loops), fanned out across
worker processes and memoized on disk when the CLI passes ``--jobs`` /
enables the cache. Results always come back in spec order, so the tables
are byte-identical regardless of job count.
"""

from __future__ import annotations

import inspect

from ..parallel import Spec, run_sweep
from ..workload.rates import ModulatedRate, ScaledRate, StepRate
from .plots import ascii_multi_series
from .report import format_table, series_to_rows
from .runner import run_two_ring_timeseries

__all__ = ["FIGURES", "run_figure"]

# ---------------------------------------------------------------------------
# Shared λ-experiment scaffolding (compressed timeline, see EXPERIMENTS.md)
# ---------------------------------------------------------------------------
STEP_SECONDS = 8.0
LAMBDA_DURATION = 5 * STEP_SECONDS
MESSAGE_SIZE = 8 * 1024


def _msgs(mbps: float) -> float:
    return mbps * 1e6 / 8.0 / MESSAGE_SIZE


def _stepped(levels: list[float]) -> StepRate:
    return StepRate([(i * STEP_SECONDS, _msgs(v)) for i, v in enumerate(levels)])


def _point(runner: str, **kwargs) -> Spec:
    """A spec for one ``repro.bench.runner`` call (JSON-primitive kwargs)."""
    return Spec(fn=f"repro.bench.runner:{runner}", kwargs=kwargs, label=f"{runner}:{kwargs}")


def _run_specs(specs: list[Spec], prune: bool, figure: str, grid):
    """Run a figure's sweep, optionally through the model-guided pruner.

    With ``prune`` the analytic model plans which grid points sit deep
    inside a predicted flat/linear region; those are interpolated from
    the simulated anchors and tagged ``extra["model"] == "interpolated"``
    instead of being simulated (imported lazily so plain sweeps never
    touch the model package).
    """
    if not prune:
        return run_sweep(specs)
    from ..model.prune import figure1_plan, figure5_plan, run_pruned_sweep

    plan = {"fig1": figure1_plan, "fig5": figure5_plan}[figure](grid)
    return run_pruned_sweep(specs, plan)


def _lambda_case(
    levels: list[float],
    lam: float,
    scale2: float = 1.0,
    modulate: bool = False,
    buffer_limit: int = 200_000,
):
    """One λ-experiment time series, built from primitives.

    Module-level (and primitive-argument) so it is addressable as a spec:
    rate-schedule *objects* never cross the spec boundary — their shape
    parameters do, which keeps specs picklable and content-hashable.
    """
    fast = _stepped(levels)
    slow = _stepped(levels)
    if scale2 != 1.0:
        slow = ScaledRate(slow, scale2)
    if modulate:
        fast = ModulatedRate(fast, amplitude=0.6, period=8.0)
        slow = ModulatedRate(slow, amplitude=0.6, period=8.0)
    return run_two_ring_timeseries(
        (fast, slow),
        lambda_rate=lam,
        duration=LAMBDA_DURATION,
        message_size=MESSAGE_SIZE,
        buffer_limit=buffer_limit,
    )


def _lambda_spec(levels: list[float], lam: float, **kwargs) -> Spec:
    return Spec(
        fn="repro.bench.figures:_lambda_case",
        kwargs={"levels": list(levels), "lam": lam, **kwargs},
        label=f"lambda_case:lam={lam:g}:{kwargs}",
    )


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------
def figure1(prune: bool = False):
    """In-memory vs Recoverable Ring Paxos (latency vs throughput).

    ``prune=True`` lets the analytic model skip points deep inside each
    mode's predicted-flat region, interpolating them from the simulated
    anchors (tagged ``model:interpolated``); see :mod:`repro.model.prune`.
    """
    grid = [
        (durable, offered)
        for durable, offered_list in (
            (False, [100, 300, 500, 650, 700, 750]),
            (True, [100, 200, 300, 380, 420, 500]),
        )
        for offered in offered_list
    ]
    specs = [
        _point("run_single_ring_point", offered_mbps=float(offered), durable=durable)
        for durable, offered in grid
    ]
    results = _run_specs(specs, prune, "fig1", grid)
    rows = [
        (r.label, offered, r.delivered_mbps, r.latency_ms, r.cpu_pct,
         r.extra["disk_util_pct"])
        for (durable, offered), r in zip(grid, results)
    ]
    table = format_table(
        "Figure 1: latency vs delivery throughput per server (single Ring Paxos)",
        ["mode", "offered Mbps", "delivered Mbps", "latency ms", "coord CPU %", "disk %"],
        rows,
    )
    return rows, table


def figure2():
    """Partitioned dummy service over one Ring Paxos instance."""
    ns = (1, 2, 4, 8)
    specs = [_point("run_partitioned_single_ring_point", n_partitions=n) for n in ns]
    rows = [
        (n, r.delivered_mbps, r.extra["per_partition_mbps"], r.cpu_pct)
        for n, r in zip(ns, run_sweep(specs))
    ]
    table = format_table(
        "Figure 2: overall throughput of a partitioned service on one Ring Paxos",
        ["partitions", "overall Mbps", "per-partition Mbps", "coord CPU %"],
        rows,
    )
    return rows, table


def figure5(prune: bool = False):
    """Scalability: M-RP (RAM/DISK) vs Spread, Ring Paxos, LCR.

    ``prune=True`` simulates only each series' endpoints when the model
    certifies the span as linear (M-RP) or flat (the baselines),
    interpolating the interior; see :mod:`repro.model.prune`.
    """
    grid: list[tuple[str, int, Spec]] = []
    for n in (1, 2, 4, 8):
        grid.append(("RAM M-RP", n, _point("run_multiring_point", n_rings=n, durable=False)))
    for n in (1, 2, 4, 8):
        grid.append(("DISK M-RP", n, _point("run_multiring_point", n_rings=n, durable=True)))
    for n in (1, 2, 4, 8):
        grid.append(("Ring Paxos", n, _point("run_partitioned_single_ring_point", n_partitions=n)))
    for n in (1, 2, 4, 8):
        grid.append(("Spread", n, _point("run_spread_point", n_daemons=n)))
    for n in (2, 4, 8, 16):
        grid.append(("LCR", n, _point("run_lcr_point", n_nodes=n)))
    results = _run_specs(
        [spec for _, _, spec in grid], prune, "fig5",
        [(system, n) for system, n, _ in grid],
    )
    rows = []
    for (system, n, _), r in zip(grid, results):
        msgs = 0.0 if system == "Ring Paxos" else r.msgs_per_s
        rows.append((system, n, r.delivered_mbps / 1e3, msgs, r.latency_ms, r.cpu_pct))
    table = format_table(
        "Figure 5: scalability, one group per learner",
        ["system", "partitions/nodes", "Gbps", "msg/s", "latency ms", "max CPU %"],
        rows,
    )
    return rows, table


def figure6():
    """Every learner subscribes to all groups (ingress-bound)."""
    grid = [(durable, n) for durable in (False, True) for n in (1, 2, 4, 8)]
    specs = [
        _point("run_multiring_point", n_rings=n, durable=durable, subscribe_all=True)
        for durable, n in grid
    ]
    rows = [
        ("DISK M-RP" if durable else "RAM M-RP", n, r.delivered_mbps,
         r.msgs_per_s, r.latency_ms, r.extra["learner_ingress_pct"],
         r.extra["learner_cpu_pct"])
        for (durable, n), r in zip(grid, run_sweep(specs))
    ]
    table = format_table(
        "Figure 6: every learner subscribes to all groups",
        ["system", "rings", "Mbps", "msg/s", "latency ms", "ingress %", "learner CPU %"],
        rows,
    )
    return rows, table


def figure7():
    """The effect of Delta."""
    grid = [
        (delta, offered)
        for delta in (1e-3, 10e-3, 100e-3)
        for offered in (50, 200, 400, 800)
    ]
    specs = [
        _point("run_two_ring_parameter_point",
               offered_mbps_total=float(offered), delta=delta, burst=8)
        for delta, offered in grid
    ]
    rows = [
        (f"{delta * 1e3:g} ms", offered, r.delivered_mbps, r.latency_ms, r.cpu_pct)
        for (delta, offered), r in zip(grid, run_sweep(specs))
    ]
    table = format_table(
        "Figure 7: the effect of Delta (2 rings, learner on both)",
        ["Delta", "offered Mbps", "delivered Mbps", "latency ms", "coord CPU %"],
        rows,
    )
    return rows, table


def figure8():
    """The effect of M."""
    grid = [(m, offered) for m in (1, 10, 100) for offered in (200, 400, 600, 800)]
    specs = [
        _point("run_two_ring_parameter_point",
               offered_mbps_total=float(offered), m=m, burst=1, jitter=0.0)
        for m, offered in grid
    ]
    rows = [
        (m, offered, r.delivered_mbps, r.latency_ms, r.extra["learner_cpu_pct"])
        for (m, offered), r in zip(grid, run_sweep(specs))
    ]
    table = format_table(
        "Figure 8: the effect of M (2 rings, learner on both)",
        ["M", "offered Mbps", "delivered Mbps", "latency ms", "learner CPU %"],
        rows,
    )
    return rows, table


def _lambda_series_rows(results):
    rows = []
    for lam, res in results.items():
        state = "halted" if res.extra["halted"] else "ok"
        rows.append((f"{lam:g}", state, "", ""))
        for t, v in series_to_rows(res.latency_ms, every=4):
            rows.append((f"{lam:g}", f"t={t:g}s", f"lat={v:.2f}ms", ""))
    return rows


def _lambda_latency_plot(results) -> str:
    return ascii_multi_series(
        {f"lambda={lam:g} lat(ms)": res.latency_ms for lam, res in results.items()},
        title="latency over time (sparklines, max-pooled)",
    )


def _lambda_figure(title: str, lams: tuple[float, ...], levels: list[float], **case_kwargs):
    specs = [_lambda_spec(levels, lam, **case_kwargs) for lam in lams]
    results = dict(zip(lams, run_sweep(specs)))
    rows = _lambda_series_rows(results)
    table = format_table(title, ["lambda", "state/t", "latency", ""], rows)
    table += "\n\n" + _lambda_latency_plot(results)
    return results, table


def figure9():
    """Lambda with equal constant rates."""
    return _lambda_figure(
        "Figure 9: lambda with equal constant rates (stepped every 8 s)",
        (0.0, 1000.0, 5000.0),
        [25, 75, 150, 225, 310],
    )


def figure10():
    """Lambda with 2:1 skewed constant rates."""
    return _lambda_figure(
        "Figure 10: lambda with 2:1 skewed constant rates",
        (1000.0, 5000.0, 9000.0),
        [50, 150, 300, 450, 520],
        scale2=0.5,
        buffer_limit=15_000,
    )


def figure11():
    """Lambda with oscillating 2:1 rates."""
    return _lambda_figure(
        "Figure 11: lambda with oscillating 2:1 rates",
        (5000.0, 9000.0, 12000.0),
        [50, 130, 260, 330, 390],
        scale2=0.5,
        modulate=True,
        buffer_limit=15_000,
    )


def figure12():
    """Coordinator failure at t=20 s, restart 3 s later."""
    [res] = run_sweep([
        _point("run_coordinator_failure_timeseries",
               rate_msgs_per_s=4000.0, fail_at=20.0, restart_after=3.0, duration=32.0)
    ])
    delivered = dict((round(t), v) for t, v in res.delivered_mbps)
    rx1 = dict((round(t), v) for t, v in res.multicast_mbps[0])
    rx2 = dict((round(t), v) for t, v in res.multicast_mbps[1])
    rows = [
        (t, f"{rx1.get(t, 0):.0f}", f"{rx2.get(t, 0):.0f}", f"{delivered.get(t, 0):.0f}")
        for t in range(32)
    ]
    table = format_table(
        "Figure 12: coordinator of ring 1 fails at t=20s, restarts at t=23s",
        ["t (s)", "ring1 recv Mbps", "ring2 recv Mbps", "delivered Mbps"],
        rows,
    )
    table += "\n\n" + ascii_multi_series(
        {
            "ring1 recv Mbps": res.multicast_mbps[0],
            "ring2 recv Mbps": res.multicast_mbps[1],
            "delivered Mbps ": res.delivered_mbps,
        },
        title="throughput over time (sparklines)",
    )
    return res, table


def related_mencius():
    """Related work: Mencius vs Multi-Ring Paxos (Section V)."""
    grid: list[tuple[str, int, Spec]] = []
    for n in (2, 4, 8):
        grid.append(("Mencius", n, _point("run_mencius_point", n_servers=n)))
    for n in (2, 4, 8):
        grid.append(("RAM M-RP", n, _point("run_multiring_point", n_rings=n, durable=False)))
    rows = [
        (system, n, r.delivered_mbps / 1e3, r.latency_ms, r.cpu_pct)
        for (system, n, _), r in zip(grid, run_sweep([s for _, _, s in grid]))
    ]
    table = format_table(
        "Related work: Mencius vs Multi-Ring Paxos",
        ["system", "servers/rings", "Gbps", "latency ms", "max CPU %"],
        rows,
    )
    return rows, table


def figure_geo(quick: bool = False):
    """Geo-distribution: the three "Stretching Multi-Ring Paxos" shapes.

    Three sections over the multi-datacenter fabric: stretching one ring
    member across a WAN hop leaves throughput flat (section 1) while
    decision latency tracks the slowest member's RTT wherever it sits in
    the ring (section 2), and the latency-aware in-region ring placement
    beats a ring pinned a hop away (section 3). ``quick=True`` shortens
    the measurement windows for CI smoke runs.
    """
    timing = {"duration": 0.6, "warmup": 0.3} if quick else {}

    def geo_point(runner: str, **kwargs) -> Spec:
        kwargs.update(timing)
        return Spec(fn=f"repro.bench.geo:{runner}", kwargs=kwargs, label=f"{runner}:{kwargs}")

    stretch_grid = [(far, 0) for far in (0.0, 5.0, 25.0, 50.0)]
    slowest_grid = [(far, pos) for far in (5.0, 25.0, 50.0) for pos in (0, 1)]
    placement_grid = ["local", "remote"]
    specs = (
        [geo_point("run_geo_ring_point", far_ms=far, far_position=pos)
         for far, pos in stretch_grid + slowest_grid]
        + [geo_point("run_geo_placement_point", placement=p) for p in placement_grid]
    )
    results = run_sweep(specs)
    stretch = results[: len(stretch_grid)]
    slowest = results[len(stretch_grid): len(stretch_grid) + len(slowest_grid)]
    placement = results[len(stretch_grid) + len(slowest_grid):]

    rows = {
        "stretch": [
            (far, r.delivered_mbps, r.latency_ms, r.cpu_pct)
            for (far, _), r in zip(stretch_grid, stretch)
        ],
        "slowest": [
            (far, pos, r.extra["slowest_rtt_ms"], r.latency_ms)
            for (far, pos), r in zip(slowest_grid, slowest)
        ],
        "placement": [
            (p, r.extra["ring_region"], r.delivered_mbps, r.latency_ms)
            for p, r in zip(placement_grid, placement)
        ],
    }
    table = format_table(
        "Geo 1: throughput while stretching one ring member across the WAN",
        ["far one-way ms", "delivered Mbps", "latency ms", "coord CPU %"],
        rows["stretch"],
    )
    table += "\n\n" + format_table(
        "Geo 2: decision latency tracks the slowest member's WAN RTT",
        ["far one-way ms", "ring position", "slowest RTT ms", "latency ms"],
        rows["slowest"],
    )
    table += "\n\n" + format_table(
        "Geo 3: in-region vs cross-region ring placement (25 ms WAN)",
        ["placement", "ring region", "delivered Mbps", "latency ms"],
        rows["placement"],
    )
    return rows, table


def figure_clients(quick: bool = False):
    """Client populations: latency CDFs vs population size, skew, overload.

    Section 1 sweeps flyweight population size (10k to 1M sessions) and
    key skew (uniform vs Zipf 1.1) at a fixed total offered rate: p50/
    p99/p999 end-to-end latency stays flat because simulation (and
    service) cost scales with the request rate, not the session count.
    Section 2 drives an overloaded, admission-controlled deployment
    through a coordinator outage: intake sheds and delays bound the
    queues, timed-out sessions retry and fail over, and the tail (p999)
    absorbs the outage instead of the system queueing unboundedly.
    Section 3 prints the full latency CDF per scenario. ``quick=True``
    shortens windows for CI smoke runs (the 1M-session scenario stays).
    """
    rate = 3000.0
    if quick:
        sizes, timing = [10_000, 1_000_000], {"duration": 0.4, "warmup": 0.1}
        crash = {"crash_coordinator_at": 0.25, "restart_coordinator_at": 0.40}
    else:
        sizes, timing = [10_000, 100_000, 1_000_000], {"duration": 1.0, "warmup": 0.2}
        crash = {"crash_coordinator_at": 0.45, "restart_coordinator_at": 0.70}
    skews = [0.0, 1.1]

    def clients_point(**kwargs) -> Spec:
        kwargs.update(timing)
        return Spec(
            fn="repro.bench.clients:run_population_point",
            kwargs=kwargs,
            label=f"run_population_point:{kwargs}",
        )

    sweep_grid = [(n, s) for n in sizes for s in skews]
    specs = [clients_point(n_sessions=n, rate=rate, zipf_s=s) for n, s in sweep_grid]
    specs.append(clients_point(
        n_sessions=200_000, rate=4000.0,
        admission_inflight=64, admission_queue=128,
        label="overload + coordinator outage", **crash,
    ))
    results = run_sweep(specs)
    sweep, overload = results[:-1], results[-1]

    rows = {
        "sweep": [
            (f"{n:,}", s, int(rate), round(r.msgs_per_s, 1),
             round(r.extra["p50_ms"], 3), round(r.extra["p99_ms"], 3),
             round(r.extra["p999_ms"], 3))
            for (n, s), r in zip(sweep_grid, sweep)
        ],
        "overload": [
            (overload.label, round(overload.msgs_per_s, 1),
             round(overload.extra["p50_ms"], 3), round(overload.extra["p999_ms"], 3),
             int(overload.extra["timeouts"]), int(overload.extra["retries"]),
             int(overload.extra["delayed"]), int(overload.extra["shed"]),
             int(overload.extra["abandoned"]))
        ],
        "cdf": [
            (r.label, *(round(v, 3) for v, _ in r.extra["cdf_ms"]))
            for r in results
        ],
    }
    table = format_table(
        "Clients 1: end-to-end latency vs population size and key skew "
        f"({int(rate)} req/s offered)",
        ["sessions", "zipf s", "offered req/s", "completed/s",
         "p50 ms", "p99 ms", "p999 ms"],
        rows["sweep"],
    )
    table += "\n\n" + format_table(
        "Clients 2: overload + coordinator outage under admission control",
        ["scenario", "completed/s", "p50 ms", "p999 ms", "timeouts",
         "retries", "delayed", "shed", "abandoned"],
        rows["overload"],
    )
    table += "\n\n" + format_table(
        "Clients 3: latency CDF per scenario (ms at each cumulative decile)",
        ["scenario"] + [f"{10 * (i + 1)}%" for i in range(10)],
        rows["cdf"],
    )
    return rows, table


def figure_elasticity(quick: bool = False):
    """Elasticity: throughput through a live remap and a ring split.

    Two groups each sustain a steady closed-loop load. At ``remap_at``
    the reconfiguration manager moves group 1 from ring 1 onto ring 0
    (drain, leave/join cuts, seq handoff) while traffic keeps flowing;
    at ``split_at`` the now-doubled ring 0 is split, deploying a fresh
    ring mid-run and moving group 1 onto it. The table and sparklines
    show per-group and total delivered throughput staying up across
    both epoch changes; the annotations report when each operation
    committed. ``quick=True`` shortens the run for CI smoke runs.
    """
    timing = (
        {"duration": 8.0, "remap_at": 2.0, "split_at": 5.0}
        if quick else
        {"duration": 40.0, "remap_at": 10.0, "split_at": 25.0}
    )
    [res] = run_sweep([
        _point("run_elasticity_timeseries", rate_msgs_per_s=3000.0, **timing)
    ])
    delivered = dict((round(t), v) for t, v in res.delivered_mbps)
    g0 = dict((round(t), v) for t, v in res.multicast_mbps[0])
    g1 = dict((round(t), v) for t, v in res.multicast_mbps[1])
    marks = {
        round(timing["remap_at"]): "remap group 1 -> ring 0",
        round(timing["split_at"]): "split ring 0",
    }
    rows = [
        (t, f"{g0.get(t, 0):.0f}", f"{g1.get(t, 0):.0f}",
         f"{delivered.get(t, 0):.0f}", marks.get(t, ""))
        for t in range(int(timing["duration"]))
    ]
    table = format_table(
        "Elasticity: live group remap at "
        f"t={timing['remap_at']:.0f}s, ring split at t={timing['split_at']:.0f}s",
        ["t (s)", "group0 Mbps", "group1 Mbps", "delivered Mbps", "event"],
        rows,
    )
    table += "\n\n" + ascii_multi_series(
        {
            "group0 Mbps   ": res.multicast_mbps[0],
            "group1 Mbps   ": res.multicast_mbps[1],
            "delivered Mbps": res.delivered_mbps,
        },
        title="throughput over time (sparklines)",
    )
    table += (
        f"\n\nremap committed at t={res.extra['remap_done_at']:.3f}s"
        f" (triggered t={res.extra['remap_at']:.1f}s);"
        f" split deployed ring {res.extra['split_new_ring']}"
        f" (final epoch {res.extra['final_epoch']},"
        f" {res.extra['values_bounced']:.0f} bounced,"
        f" {res.extra['values_forwarded']:.0f} forwarded)"
    )
    return res, table


FIGURES = {
    "fig1": figure1,
    "fig2": figure2,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
    "mencius": related_mencius,
    "geo": figure_geo,
    "clients": figure_clients,
    "elasticity": figure_elasticity,
}


def run_figure(name: str, quick: bool = False, prune: bool = False):
    """Run one named figure; returns (data, table_text).

    ``quick=True`` shortens measurement windows on figures that support
    it (those taking a ``quick`` keyword); others run at full size.
    ``prune=True`` enables model-guided sweep pruning on figures that
    support it (those taking a ``prune`` keyword).
    """
    try:
        fn = FIGURES[name]
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; available: {', '.join(sorted(FIGURES))}"
        ) from None
    params = inspect.signature(fn).parameters
    kwargs = {}
    if quick and "quick" in params:
        kwargs["quick"] = True
    if prune and "prune" in params:
        kwargs["prune"] = True
    return fn(**kwargs)
