"""The paper's qualitative shape assertions, callable from anywhere.

The benchmark suite (``benchmarks/test_fig1_ring_paxos.py``,
``benchmarks/test_fig5_scalability.py``) asserts the qualitative claims
of Figures 1 and 5 against simulator output. The pruned-vs-unpruned
equivalence check in CI needs the *same* assertions on both runs, so
they live here as plain functions over the figure row tuples — pytest
files and scripts both call them, and a shape can never drift between
the two callers.

Each function raises ``AssertionError`` on the first violated claim and
returns ``None`` on success.
"""

from __future__ import annotations

__all__ = ["assert_figure1_shapes", "assert_figure5_shapes"]


def assert_figure1_shapes(rows) -> None:
    """Figure 1: In-memory is CPU-bound ~700 Mbps, Recoverable disk-bound ~400.

    Rows are ``(mode, offered, delivered, latency_ms, cpu_pct, disk_pct)``
    as produced by :func:`repro.bench.figures.figure1`.
    """
    inmem = [r for r in rows if r[0].startswith("In-memory")]
    disk = [r for r in rows if r[0].startswith("Recoverable")]

    # In-memory: keeps up with offered load until ~700 Mbps...
    for row in inmem:
        if row[1] <= 650:
            assert row[2] >= 0.95 * row[1], f"In-memory under-delivers at {row[1]} Mbps"
    # ...where the coordinator CPU saturates (CPU-bound knee).
    knee = [r for r in inmem if r[1] >= 700]
    assert all(r[4] >= 90.0 for r in knee), "In-memory knee not CPU-bound"
    assert max(r[2] for r in inmem) <= 800.0, "In-memory delivers past the paper's knee"

    # Recoverable: saturates around 400 Mbps, with moderate coordinator
    # CPU (disk-bound) and the disk near 100% at the knee.
    for row in disk:
        if row[1] <= 380:
            assert row[2] >= 0.95 * row[1], f"Recoverable under-delivers at {row[1]} Mbps"
    saturated = [r for r in disk if r[1] >= 420]
    assert all(r[2] <= 450.0 for r in saturated), "Recoverable delivers past the disk bound"
    assert all(r[4] <= 75.0 for r in saturated), "Recoverable knee not disk-bound (~60% CPU)"
    assert all(r[5] >= 90.0 for r in saturated), "Recoverable knee disk not saturated"

    # Latency knee: saturation latency >> low-load latency in both modes.
    assert inmem[-1][3] > 5 * inmem[0][3], "In-memory latency knee missing"
    assert disk[-1][3] > 5 * disk[0][3], "Recoverable latency knee missing"


def assert_figure5_shapes(rows) -> None:
    """Figure 5: M-RP scales linearly in rings; the baselines stay flat.

    Rows are ``(system, n, gbps, msgs_per_s, latency_ms, cpu_pct)`` as
    produced by :func:`repro.bench.figures.figure5`.
    """
    by = lambda name: [r for r in rows if r[0] == name]
    ram, disk = by("RAM M-RP"), by("DISK M-RP")
    ringpaxos, spread, lcr = by("Ring Paxos"), by("Spread"), by("LCR")

    # RAM M-RP scales linearly, exceeding 5 Gbps at 8 rings.
    assert ram[-1][2] > 5.0, "RAM M-RP does not exceed 5 Gbps at 8 rings"
    assert 6.0 <= ram[-1][2] / ram[0][2] <= 10.0, "RAM M-RP scaling not ~linear"
    # DISK M-RP scales linearly too, around 3 Gbps at 8 rings.
    assert 2.5 <= disk[-1][2] <= 3.8, "DISK M-RP not ~3 Gbps at 8 rings"
    assert 6.0 <= disk[-1][2] / disk[0][2] <= 10.0, "DISK M-RP scaling not ~linear"
    # RAM beats DISK at every size (CPU bound ~700 vs disk bound ~400/ring).
    assert all(r[2] > d[2] for r, d in zip(ram, disk)), "DISK M-RP beats RAM M-RP"

    # The three baselines are flat: no growth with nodes/groups/daemons.
    for name, flat in (("Ring Paxos", ringpaxos), ("Spread", spread), ("LCR", lcr)):
        values = [r[2] for r in flat]
        assert max(values) / min(values) < 1.3, f"{name} baseline is not flat"
    # And at 8 partitions Multi-Ring Paxos dominates all of them.
    best_baseline = max(r[2] for r in ringpaxos + spread + lcr)
    assert ram[-1][2] > 3 * best_baseline, "RAM M-RP does not dominate the baselines"
