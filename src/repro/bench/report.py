"""Plain-text report formatting for the benchmark harness.

Each benchmark prints the rows/series its paper figure reports, plus a
paper-vs-measured expectation line, and appends everything to
``results/`` so EXPERIMENTS.md can be assembled from real runs.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Sequence

__all__ = ["format_table", "emit", "series_to_rows", "read_jsonl", "write_jsonl"]

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "results")


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def emit(name: str, text: str) -> None:
    """Print a report block and persist it under results/<name>.txt."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")


def series_to_rows(
    series: list[tuple[float, float]], every: int = 5
) -> list[tuple[float, float]]:
    """Thin a per-second series to every ``every``-th sample for printing."""
    return [point for i, point in enumerate(series) if i % every == 0]


def write_jsonl(path: str, records: Iterable[dict[str, Any]]) -> int:
    """Write ``records`` as one JSON object per line; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, default=str) + "\n")
            count += 1
    return count


def read_jsonl(path: str, type: str | None = None) -> list[dict[str, Any]]:
    """Load an observability trace written by the JSONL exporter.

    ``type`` filters on the record tag (``probe`` / ``metric`` /
    ``profile`` / ``meta``); blank lines are ignored.
    """
    records: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if type is None or record.get("type") == type:
                records.append(record)
    return records
