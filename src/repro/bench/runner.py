"""Experiment runners: one measurement primitive per experiment family.

Every figure in the paper's evaluation reduces to one of a handful of
measurement shapes:

* a steady-state *point*: drive a deployment at a fixed offered load (or
  closed-loop at capacity), measure delivered throughput, latency and the
  most-loaded node's CPU over a window after warm-up;
* a *time series*: drive rate schedules and sample per-second multicast
  rate, delivery rate and latency (the λ and failure experiments).

All runners build a fresh simulator per point, so points are independent
and deterministic given the seed. That independence is load-bearing:
every runner is addressable as a :class:`repro.parallel.spec.Spec`
(``"repro.bench.runner:<name>"`` plus JSON-primitive kwargs), which is
how figure sweeps fan points out across worker processes and memoize
completed points on disk (see ``repro.parallel`` and
``repro.bench.figures``). Keep new runners pure functions of their
keyword arguments — no module-level mutable state, results picklable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Callable

from ..baselines.lcr import LCR_MESSAGE_SIZE, build_lcr_ring
from ..baselines.mencius import build_mencius
from ..baselines.spread import SPREAD_MESSAGE_SIZE, build_spread
from ..calibration import DEFAULT_VALUE_SIZE, bytes_per_s_to_mbps, mbps_to_bytes_per_s
from ..core.config import MultiRingConfig
from ..core.deployment import MultiRingPaxos
from ..ringpaxos.builder import build_ring
from ..sim.network import Network
from ..sim.simulator import Simulator
from ..workload.generator import ClosedLoopGenerator, OpenLoopGenerator, ThrottledGenerator
from ..workload.rates import ConstantRate, RateSchedule, ScaledRate

__all__ = [
    "PointResult",
    "SeriesResult",
    "run_single_ring_point",
    "run_multiring_point",
    "run_partitioned_single_ring_point",
    "run_lcr_point",
    "run_mencius_point",
    "run_spread_point",
    "run_two_ring_parameter_point",
    "run_two_ring_timeseries",
    "run_coordinator_failure_timeseries",
    "run_elasticity_timeseries",
]


@dataclass(slots=True)
class PointResult:
    """One steady-state measurement."""

    label: str
    offered_mbps: float
    delivered_mbps: float
    msgs_per_s: float
    latency_ms: float
    cpu_pct: float
    extra: dict = field(default_factory=dict)


@dataclass(slots=True)
class SeriesResult:
    """Time-series measurement: lists of (t, value) points."""

    label: str
    multicast_mbps: dict[int, list[tuple[float, float]]]
    delivered_mbps: list[tuple[float, float]]
    latency_ms: list[tuple[float, float]]
    extra: dict = field(default_factory=dict)


def _rate_to_msgs(offered_mbps: float, message_size: int) -> float:
    return mbps_to_bytes_per_s(offered_mbps) / message_size


def _window(counter_probe: Callable[[], float], sim: Simulator, start: float) -> Callable[[], float]:
    """Snapshot ``counter_probe`` at ``start``; later call returns the delta."""
    snap = {"value": 0.0}
    sim.at(start, lambda: snap.__setitem__("value", counter_probe()))
    return lambda: counter_probe() - snap["value"]


# ---------------------------------------------------------------------------
# Figure 1 — single Ring Paxos, In-memory vs Recoverable
# ---------------------------------------------------------------------------
def run_single_ring_point(
    offered_mbps: float,
    durable: bool,
    duration: float = 2.0,
    warmup: float = 1.0,
    message_size: int = DEFAULT_VALUE_SIZE,
    seed: int = 1,
) -> PointResult:
    """Open-loop load on one ring; the Figure 1 latency-throughput curve."""
    sim = Simulator(seed=seed)
    net = Network(sim)
    ring = build_ring(sim, net, durable=durable)
    prop = ring.proposers[0]
    learner = ring.learners[0]
    rate = _rate_to_msgs(offered_mbps, message_size)
    OpenLoopGenerator(sim, lambda: prop.multicast(None, message_size), ConstantRate(rate)).start()
    end = warmup + duration
    delivered = _window(lambda: learner.delivered_bytes.value, sim, warmup)
    messages = _window(lambda: learner.delivered_messages.value, sim, warmup)
    sim.run(until=end)
    coord_node = ring.coordinator.node
    cpu = coord_node.cpu.busy_between(warmup, end) / duration
    return PointResult(
        label=f"{'Recoverable' if durable else 'In-memory'} Ring Paxos",
        offered_mbps=offered_mbps,
        delivered_mbps=bytes_per_s_to_mbps(delivered() / duration),
        msgs_per_s=messages() / duration,
        latency_ms=learner.latency.trimmed_mean() * 1e3,
        cpu_pct=100.0 * cpu,
        extra={
            "disk_util_pct": 100.0
            * (coord_node.disk.busy_between(warmup, end) / duration if coord_node.disk else 0.0)
        },
    )


# ---------------------------------------------------------------------------
# Figures 5 and 6 — Multi-Ring Paxos scalability
# ---------------------------------------------------------------------------
def run_multiring_point(
    n_rings: int,
    durable: bool,
    subscribe_all: bool = False,
    duration: float = 2.0,
    warmup: float = 1.0,
    window: int = 48,
    message_size: int = DEFAULT_VALUE_SIZE,
    lambda_rate: float = 9000.0,
    delta: float = 1e-3,
    m: int = 1,
    seed: int = 1,
) -> PointResult:
    """Closed-loop capacity measurement of an n-ring deployment.

    ``subscribe_all=False``: one learner per group, each subscribing only
    its group (Figure 5 — aggregate throughput scales with rings).
    ``subscribe_all=True``: a single learner subscribed to every group
    (Figure 6 — capped by the learner's ingress link).
    """
    mrp = MultiRingPaxos(
        MultiRingConfig(
            n_groups=n_rings,
            durable=durable,
            lambda_rate=lambda_rate,
            delta=delta,
            m=m,
            seed=seed,
        )
    )
    sim = mrp.sim
    learners = []
    if subscribe_all:
        learners.append(mrp.add_learner(groups=list(range(n_rings))))
    else:
        for g in range(n_rings):
            learners.append(mrp.add_learner(groups=[g]))
    gens: dict[tuple[str, int], ClosedLoopGenerator] = {}
    for g in range(n_rings):
        prop = mrp.add_proposer()
        gen = ClosedLoopGenerator(
            sim,
            (lambda p=prop, g=g: p.multicast(g, None, message_size)),
            window=window,
        )
        gens[(prop.node.name, g)] = gen
        gen.start()

    def completion_hook(group: int, value) -> None:
        gen = gens.get((value.sender, group))
        if gen is not None:
            gen.notify(value.seq)

    # Exactly one learner notifies each generator (the one for its group).
    if subscribe_all:
        learners[0].on_deliver = completion_hook
    else:
        for learner in learners:
            learner.on_deliver = completion_hook

    end = warmup + duration
    delivered = _window(lambda: sum(ln.delivered_bytes.value for ln in learners), sim, warmup)
    messages = _window(lambda: sum(ln.delivered_messages.value for ln in learners), sim, warmup)
    sim.run(until=end)
    cpu = max(
        handle.coordinator.node.cpu.busy_between(warmup, end) / duration
        for handle in mrp.rings.values()
    )
    learner_cpu = max(ln.node.cpu.busy_between(warmup, end) / duration for ln in learners)
    latencies = [ln.latency.trimmed_mean() for ln in learners if ln.latency.count]
    mode = "DISK M-RP" if durable else "RAM M-RP"
    return PointResult(
        label=f"{mode} x{n_rings}" + (" (all-groups learner)" if subscribe_all else ""),
        offered_mbps=0.0,
        delivered_mbps=bytes_per_s_to_mbps(delivered() / duration),
        msgs_per_s=messages() / duration,
        latency_ms=(sum(latencies) / len(latencies) * 1e3 if latencies else 0.0),
        cpu_pct=100.0 * max(cpu, learner_cpu),
        extra={
            "coordinator_cpu_pct": 100.0 * cpu,
            "learner_cpu_pct": 100.0 * learner_cpu,
            "learner_ingress_pct": 100.0
            * max(
                mrp.network.nic(ln.node.name).ingress.busy_between(warmup, end) / duration
                for ln in learners
            ),
        },
    )


# ---------------------------------------------------------------------------
# Figure 2 — partitioned dummy service over ONE Ring Paxos instance
# ---------------------------------------------------------------------------
def run_partitioned_single_ring_point(
    n_partitions: int,
    duration: float = 2.0,
    warmup: float = 1.0,
    window: int = 48,
    message_size: int = DEFAULT_VALUE_SIZE,
    seed: int = 1,
) -> PointResult:
    """All partitions' groups mapped onto a single ring (γ > δ, δ = 1).

    Replicas discard messages instantly (the dummy service), so throughput
    is purely what the one ring can order — flat in the partition count.
    """
    mrp = MultiRingPaxos(
        MultiRingConfig(n_groups=n_partitions, n_rings=1, lambda_rate=0.0, seed=seed)
    )
    sim = mrp.sim
    learners = [mrp.add_learner(groups=[g]) for g in range(n_partitions)]
    gens: dict[tuple[str, int], ClosedLoopGenerator] = {}
    for g in range(n_partitions):
        prop = mrp.add_proposer()
        gen = ClosedLoopGenerator(
            sim, (lambda p=prop, g=g: p.multicast(g, None, message_size)), window=window
        )
        gens[(prop.node.name, g)] = gen
        gen.start()

    def hook(group: int, value) -> None:
        gen = gens.get((value.sender, group))
        if gen is not None:
            gen.notify(value.seq)

    for learner in learners:
        learner.on_deliver = hook
    end = warmup + duration
    delivered = _window(lambda: sum(ln.delivered_bytes.value for ln in learners), sim, warmup)
    sim.run(until=end)
    return PointResult(
        label=f"partitioned x{n_partitions} (1 ring)",
        offered_mbps=0.0,
        delivered_mbps=bytes_per_s_to_mbps(delivered() / duration),
        msgs_per_s=0.0,
        latency_ms=0.0,
        cpu_pct=100.0 * mrp.coordinator_cpu(0, window=duration),
        extra={
            "per_partition_mbps": bytes_per_s_to_mbps(delivered() / duration) / n_partitions
        },
    )


# ---------------------------------------------------------------------------
# Figure 5 baselines — LCR and Spread
# ---------------------------------------------------------------------------
def run_lcr_point(
    n_nodes: int,
    duration: float = 2.0,
    warmup: float = 1.0,
    window: int = 16,
    message_size: int = LCR_MESSAGE_SIZE,
    seed: int = 1,
) -> PointResult:
    """Closed-loop LCR: every node broadcasts; throughput is per-node
    delivery rate (every node delivers every message)."""
    sim = Simulator(seed=seed)
    net = Network(sim)
    nodes = build_lcr_ring(sim, net, n_nodes)
    gens = []
    for node in nodes:
        gen = ClosedLoopGenerator(
            sim, (lambda n=node: n.broadcast(None, message_size)), window=window
        )
        gens.append(gen)
    # Completion: a broadcaster's own delivery of its message.
    by_name = {node.node.name: gen for node, gen in zip(nodes, gens)}
    for node in nodes:
        node.on_deliver = (
            lambda msg, me=node.node.name: by_name[msg.origin].notify(msg.seq)
            if msg.origin == me
            else None
        )
    for gen in gens:
        gen.start()
    observer = nodes[0]
    end = warmup + duration
    delivered = _window(lambda: observer.delivered_bytes.value, sim, warmup)
    messages = _window(lambda: observer.delivered.value, sim, warmup)
    sim.run(until=end)
    cpu = max(n.node.cpu.busy_between(warmup, end) / duration for n in nodes)
    return PointResult(
        label=f"LCR x{n_nodes}",
        offered_mbps=0.0,
        delivered_mbps=bytes_per_s_to_mbps(delivered() / duration),
        msgs_per_s=messages() / duration,
        latency_ms=observer.latency.trimmed_mean() * 1e3,
        cpu_pct=100.0 * cpu,
    )


def run_spread_point(
    n_daemons: int,
    duration: float = 2.0,
    warmup: float = 1.0,
    window: int = 16,
    message_size: int = SPREAD_MESSAGE_SIZE,
    seed: int = 1,
) -> PointResult:
    """Closed-loop Spread-like system: one client/group per daemon."""
    sim = Simulator(seed=seed)
    net = Network(sim)
    daemons, clients = build_spread(sim, net, n_daemons)
    gens = []
    for idx, client in enumerate(clients):
        gen = ClosedLoopGenerator(
            sim, (lambda c=client, g=idx: c.multicast(g, None, message_size)), window=window
        )
        gens.append(gen)

        def on_deliver(msg, gen=gen, me=client.node.name):
            if msg.sender == me:
                gen.notify(msg.seq)

        client.on_deliver = on_deliver
        gen.start()
    end = warmup + duration
    delivered = _window(lambda: sum(c.delivered_bytes.value for c in clients), sim, warmup)
    messages = _window(lambda: sum(c.delivered.value for c in clients), sim, warmup)
    sim.run(until=end)
    cpu = max(d.node.cpu.busy_between(warmup, end) / duration for d in daemons)
    latencies = [c.latency.trimmed_mean() for c in clients if c.latency.count]
    return PointResult(
        label=f"Spread x{n_daemons}",
        offered_mbps=0.0,
        delivered_mbps=bytes_per_s_to_mbps(delivered() / duration),
        msgs_per_s=messages() / duration,
        latency_ms=(sum(latencies) / len(latencies) * 1e3 if latencies else 0.0),
        cpu_pct=100.0 * cpu,
    )


def run_mencius_point(
    n_servers: int,
    duration: float = 2.0,
    warmup: float = 1.0,
    window: int = 16,
    message_size: int = DEFAULT_VALUE_SIZE,
    seed: int = 1,
) -> PointResult:
    """Closed-loop Mencius: every server broadcasts; throughput is the
    per-server delivery rate (every server delivers everything)."""
    sim = Simulator(seed=seed)
    net = Network(sim)
    servers = build_mencius(sim, net, n_servers)
    gens = []
    for server in servers:
        gen = ClosedLoopGenerator(
            sim, (lambda s=server: s.broadcast(None, message_size)), window=window
        )
        gens.append(gen)
    by_name = {server.node.name: gen for server, gen in zip(servers, gens)}
    for server in servers:
        server.on_deliver = (
            lambda value, me=server.node.name: by_name[value.sender].notify(value.seq)
            if value.sender == me
            else None
        )
    for gen in gens:
        gen.start()
    observer = servers[0]
    end = warmup + duration
    delivered = _window(lambda: observer.delivered_bytes.value, sim, warmup)
    messages = _window(lambda: observer.delivered.value, sim, warmup)
    sim.run(until=end)
    cpu = max(s.node.cpu.busy_between(warmup, end) / duration for s in servers)
    return PointResult(
        label=f"Mencius x{n_servers}",
        offered_mbps=0.0,
        delivered_mbps=bytes_per_s_to_mbps(delivered() / duration),
        msgs_per_s=messages() / duration,
        latency_ms=observer.latency.trimmed_mean() * 1e3,
        cpu_pct=100.0 * cpu,
    )


# ---------------------------------------------------------------------------
# Figures 7 and 8 — the effect of Δ and M (two rings, one learner on both)
# ---------------------------------------------------------------------------
def run_two_ring_parameter_point(
    offered_mbps_total: float,
    delta: float = 1e-3,
    m: int = 1,
    lambda_rate: float = 9000.0,
    duration: float = 2.0,
    warmup: float = 1.0,
    message_size: int = DEFAULT_VALUE_SIZE,
    burst: int = 16,
    jitter: float = 0.3,
    seed: int = 1,
) -> PointResult:
    """Two rings at equal average rates, one learner subscribing to both.

    Arrivals are bursty and jittered (as real clients are): during the
    gaps of one ring the learner must wait for either that ring's next
    burst or the next skip correction — which is exactly what makes the
    choice of Delta visible in latency (paper, Section VI-C).
    """
    mrp = MultiRingPaxos(
        MultiRingConfig(
            n_groups=2, lambda_rate=lambda_rate, delta=delta, m=m, seed=seed
        )
    )
    sim = mrp.sim
    learner = mrp.add_learner(groups=[0, 1])
    per_ring_rate = _rate_to_msgs(offered_mbps_total / 2.0, message_size)
    for g in range(2):
        prop = mrp.add_proposer()
        OpenLoopGenerator(
            sim,
            (lambda p=prop, g=g: p.multicast(g, None, message_size)),
            ConstantRate(per_ring_rate),
            jitter=jitter,
            burst=burst,
            name=f"openloop.g{g}",
        ).start()
    end = warmup + duration
    delivered = _window(lambda: learner.delivered_bytes.value, sim, warmup)
    sim.run(until=end)
    coord_cpu = max(
        handle.coordinator.node.cpu.busy_between(warmup, end) / duration
        for handle in mrp.rings.values()
    )
    learner_cpu = learner.node.cpu.busy_between(warmup, end) / duration
    return PointResult(
        label=f"delta={delta * 1e3:g}ms M={m} lambda={lambda_rate:g}",
        offered_mbps=offered_mbps_total,
        delivered_mbps=bytes_per_s_to_mbps(delivered() / duration),
        msgs_per_s=0.0,
        latency_ms=learner.latency.trimmed_mean() * 1e3,
        cpu_pct=100.0 * coord_cpu,
        extra={"learner_cpu_pct": 100.0 * learner_cpu},
    )


# ---------------------------------------------------------------------------
# Figures 9-11 — λ time series (two rings, rate schedules)
# ---------------------------------------------------------------------------
def run_two_ring_timeseries(
    schedules: tuple[RateSchedule, RateSchedule],
    lambda_rate: float,
    duration: float = 100.0,
    m: int = 1,
    delta: float = 1e-3,
    message_size: int = DEFAULT_VALUE_SIZE,
    buffer_limit: int = 200_000,
    seed: int = 1,
    bucket: float = 1.0,
    jitter: float = 0.15,
    rate_skew: float = 0.01,
) -> SeriesResult:
    """Two rings driven by per-ring rate schedules; per-second series.

    ``jitter`` adds mean-preserving interarrival noise; ``rate_skew``
    additionally slows ring 1 by that fraction. Physically identical
    machines still differ slightly (clocks, scheduling, batching), so
    "equal" offered rates drift apart systematically — which is exactly
    why the paper's learners never recover at lambda = 0 (Figure 9).
    """
    mrp = MultiRingPaxos(
        MultiRingConfig(
            n_groups=2,
            lambda_rate=lambda_rate,
            delta=delta,
            m=m,
            buffer_limit=buffer_limit,
            seed=seed,
            series_bucket=bucket,
        )
    )
    sim = mrp.sim
    learner = mrp.add_learner(groups=[0, 1])
    for g, schedule in enumerate(schedules):
        prop = mrp.add_proposer()
        if g == 1 and rate_skew:
            schedule = ScaledRate(schedule, 1.0 - rate_skew)
        OpenLoopGenerator(
            sim,
            (lambda p=prop, g=g: p.multicast(g, None, message_size)),
            schedule,
            stop_at=duration,
            jitter=jitter,
            name=f"openloop.g{g}",
        ).start()
    sim.run(until=duration)
    multicast = {
        g: [
            (t, bytes_per_s_to_mbps(v))
            for t, v in mrp.learners[0].ring_learners[g].receive_series.series(0.0, duration)
        ]
        for g in (0, 1)
    }
    return SeriesResult(
        label=f"lambda={lambda_rate:g}",
        multicast_mbps=multicast,
        delivered_mbps=[
            (t, bytes_per_s_to_mbps(v))
            for t, v in learner.delivery_series.series(0.0, duration)
        ],
        latency_ms=[(t, v * 1e3) for t, v in learner.latency_series.mean_series(0.0, duration)],
        extra={
            "halted": learner.halted,
            "halted_at": learner.merge.halted_at,
            "buffered_instances": learner.buffered_instances,
        },
    )


# ---------------------------------------------------------------------------
# Figure 12 — coordinator failure and restart
# ---------------------------------------------------------------------------
def run_coordinator_failure_timeseries(
    rate_msgs_per_s: float = 4000.0,
    fail_at: float = 20.0,
    restart_after: float = 3.0,
    duration: float = 40.0,
    lambda_rate: float = 9000.0,
    message_size: int = DEFAULT_VALUE_SIZE,
    window: int = 8000,
    seed: int = 1,
    bucket: float = 1.0,
) -> SeriesResult:
    """Two rings at ~constant rate; ring 0's coordinator dies and returns.

    Proposers are closed-loop on top of a rate pacer, so the learner's
    stall visibly throttles the sender of ring 1 (the effect the paper
    highlights in Figure 12's left plot).
    """
    mrp = MultiRingPaxos(
        MultiRingConfig(n_groups=2, lambda_rate=lambda_rate, seed=seed, series_bucket=bucket)
    )
    sim = mrp.sim
    learner = mrp.add_learner(groups=[0, 1])
    gens: dict[tuple[str, int], ThrottledGenerator] = {}
    for g in range(2):
        prop = mrp.add_proposer()
        gen = ThrottledGenerator(
            sim,
            (lambda p=prop, g=g: p.multicast(g, None, message_size)),
            rate=rate_msgs_per_s,
            max_outstanding=window,
        )
        gens[(prop.node.name, g)] = gen
        gen.start()

    def hook(group: int, value) -> None:
        gen = gens.get((value.sender, group))
        if gen is not None:
            gen.notify(value.seq)

    learner.on_deliver = hook
    sim.at(fail_at, lambda: mrp.crash_coordinator(0))
    sim.at(fail_at + restart_after, lambda: mrp.restart_coordinator(0))
    sim.run(until=duration)
    receive = {
        g: [
            (t, bytes_per_s_to_mbps(v))
            for t, v in learner.ring_learners[g].receive_series.series(0.0, duration)
        ]
        for g in (0, 1)
    }
    return SeriesResult(
        label="coordinator failure",
        multicast_mbps=receive,
        delivered_mbps=[
            (t, bytes_per_s_to_mbps(v))
            for t, v in learner.delivery_series.series(0.0, duration)
        ],
        latency_ms=[(t, v * 1e3) for t, v in learner.latency_series.mean_series(0.0, duration)],
        extra={"fail_at": fail_at, "restart_at": fail_at + restart_after},
    )


def run_elasticity_timeseries(
    rate_msgs_per_s: float = 3000.0,
    remap_at: float = 10.0,
    split_at: float = 25.0,
    duration: float = 40.0,
    lambda_rate: float = 9000.0,
    message_size: int = DEFAULT_VALUE_SIZE,
    window: int = 8000,
    seed: int = 1,
    bucket: float = 1.0,
) -> SeriesResult:
    """Live elasticity under load: consolidate, then split, while traffic
    keeps committing.

    Two groups start on their own rings. At ``remap_at`` the
    reconfiguration manager live-remaps group 1 onto ring 0 (the
    ring-merge direction: three epoch cuts, proposer hold, bounced-value
    forwarding); at ``split_at`` the now-shared ring is split back, which
    deploys a fresh ring mid-run and moves group 1 onto it. Closed-loop
    throttled senders per group expose any delivery stall as a visible
    throughput dip, and the per-group delivered series shows the moved
    group's stream continuing across both epoch boundaries. ``extra``
    records when each operation completed (simulated time), so the
    headline claim — the remap finishes while traffic commits — is a
    number, not a narrative.
    """
    mrp = MultiRingPaxos(
        MultiRingConfig(n_groups=2, lambda_rate=lambda_rate, seed=seed, series_bucket=bucket)
    )
    sim = mrp.sim
    learner = mrp.add_learner(groups=[0, 1])
    gens: dict[tuple[str, int], ThrottledGenerator] = {}
    for g in range(2):
        prop = mrp.add_proposer()
        counter = iter(range(10**9))

        def send(prop=prop, g=g, counter=counter):
            # Close the loop on a payload id rather than the proposer
            # seq: a multicast during the remap's hold window returns
            # None (the payload is queued and flushed at release, when
            # it gets its real seq), but the payload travels unchanged,
            # so delivery can always be matched back to the send.
            i = next(counter)
            prop.multicast(g, i, message_size)
            return SimpleNamespace(seq=i)

        gen = ThrottledGenerator(
            sim, send, rate=rate_msgs_per_s, max_outstanding=window,
        )
        gens[(prop.node.name, g)] = gen
        gen.start()

    def hook(group: int, value) -> None:
        gen = gens.get((value.sender, group))
        if gen is not None and isinstance(value.payload, int):
            gen.notify(value.payload)

    learner.on_deliver = hook
    done_at: dict[str, float] = {}
    sim.at(remap_at, lambda: mrp.reconfig.remap_group(
        1, 0, on_done=lambda op: done_at.__setitem__("remap", sim.now)))

    def split() -> None:
        new_ring = mrp.reconfig.split_ring(0)
        done_at["split_new_ring"] = new_ring if new_ring is not None else -1

    sim.at(split_at, split)
    sim.run(until=duration)
    group_mbps = {
        g: [
            (t, bytes_per_s_to_mbps(v))
            for t, v in learner.group_series[g].series(0.0, duration)
        ]
        for g in (0, 1)
    }
    return SeriesResult(
        label="live elasticity",
        multicast_mbps=group_mbps,
        delivered_mbps=[
            (t, bytes_per_s_to_mbps(v))
            for t, v in learner.delivery_series.series(0.0, duration)
        ],
        latency_ms=[(t, v * 1e3) for t, v in learner.latency_series.mean_series(0.0, duration)],
        extra={
            "remap_at": remap_at,
            "split_at": split_at,
            "remap_done_at": done_at.get("remap"),
            "split_new_ring": done_at.get("split_new_ring"),
            "final_epoch": mrp.reconfig.epoch,
            "values_bounced": mrp.reconfig.values_bounced.value,
            "values_forwarded": mrp.reconfig.values_forwarded.value,
        },
    )
