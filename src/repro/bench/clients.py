"""Client-population experiment runners (million-session flyweight tier).

Two runners drive the same partitioned KV service at the same offered
load with the two client architectures:

* :func:`run_population_point` — one :class:`ClientPopulation`
  (aggregate arrivals, flyweight sessions, shared gateway proposers,
  optional admission control). Session counts in the millions are
  routine: simulation cost scales with the request *rate*.
* :func:`run_per_actor_point` — the per-actor baseline: one
  :class:`~repro.smr.client.SmrClient` plus one
  :class:`~repro.workload.generator.OpenLoopGenerator` per session, each
  with its own node, proposer, and kernel timer. Cost scales with the
  session count; this is what the flyweight tier is benchmarked against
  (``bench_clients`` in ``repro.bench.perf``).

Same contract as :mod:`repro.bench.runner`: pure functions of
JSON-primitive kwargs, one fresh simulator per point, addressable as
``repro.bench.clients:<name>`` specs for the parallel sweep executor.
"""

from __future__ import annotations

from ..core.admission import AdmissionPolicy
from ..core.config import MultiRingConfig
from ..core.deployment import MultiRingPaxos
from ..smr.client import SmrClient
from ..smr.kvstore import KeyValueStore
from ..smr.partitioning import RangePartitioner
from ..smr.replica import Replica
from ..workload.generator import OpenLoopGenerator
from ..workload.population import ClientPopulation, SessionMix
from ..workload.rates import ConstantRate

__all__ = ["run_population_point", "run_per_actor_point"]

# Commands carry 64 bytes of header (repro.smr.statemachine.Command.size)
# and no padding in these experiments.
_COMMAND_SIZE = 64


def _build_service(n_partitions: int, seed: int) -> tuple[MultiRingPaxos, RangePartitioner]:
    partitioner = RangePartitioner(n_partitions)
    mrp = MultiRingPaxos(MultiRingConfig(n_groups=partitioner.n_groups, seed=seed))
    for p in range(n_partitions):
        Replica(mrp, partitioner, p, KeyValueStore(), name=f"replica{p}", respond=True)
    return mrp, partitioner


def run_population_point(
    n_sessions: int,
    rate: float,
    zipf_s: float = 0.0,
    multi_partition_fraction: float = 0.2,
    n_partitions: int = 2,
    duration: float = 1.0,
    warmup: float = 0.2,
    request_timeout: float = 0.25,
    admission_inflight: int = 0,
    admission_queue: int = 0,
    crash_coordinator_at: float = 0.0,
    restart_coordinator_at: float = 0.0,
    write_only: bool = False,
    seed: int = 1,
    label: str | None = None,
):
    """One flyweight population at total ``rate`` req/s over ``n_sessions``.

    ``admission_inflight`` > 0 enables gateway admission control with the
    given bounds; ``crash_coordinator_at`` > 0 crashes ring 0's
    coordinator at that time (restarting at ``restart_coordinator_at``)
    for the overload/graceful-degradation scenario. ``write_only``
    makes the mix 100% single-key inserts — the mix the per-actor
    baseline drives, for identical-offered-load comparisons.
    """
    from .runner import PointResult, _window

    mrp, partitioner = _build_service(n_partitions, seed)
    if write_only:
        mix = SessionMix(insert_fraction=1.0, delete_fraction=0.0, zipf_s=zipf_s)
    else:
        mix = SessionMix(zipf_s=zipf_s, multi_partition_fraction=multi_partition_fraction)
    admission = None
    if admission_inflight > 0:
        admission = AdmissionPolicy(max_inflight=admission_inflight, max_queue=admission_queue)
    end = warmup + duration
    population = ClientPopulation(
        mrp, partitioner, n_sessions, ConstantRate(rate), mix=mix,
        request_timeout=request_timeout, stop_at=end, admission=admission,
    ).start()
    if crash_coordinator_at > 0:
        mrp.sim.at(crash_coordinator_at, lambda: mrp.crash_coordinator(0))
        if restart_coordinator_at > crash_coordinator_at:
            mrp.sim.at(restart_coordinator_at, lambda: mrp.restart_coordinator(0))
    completed = _window(lambda: population.completions.value, mrp.sim, warmup)
    mrp.run(until=end)
    in_window = completed()
    # Drain the tail: outstanding requests get their full retry budget, so
    # timeout/abandonment counters and the latency tail are final.
    mrp.run(until=end + (population.max_retries + 1) * request_timeout)
    p50, p99, p999 = population.quantiles([0.5, 0.99, 0.999])
    shed = delayed = 0.0
    for gateway in (population.primary, population.spare):
        if gateway.admission is not None:
            shed += gateway.admission.shed.value
            delayed += gateway.admission.delayed.value
    return PointResult(
        label=label or f"{n_sessions} sessions, zipf={zipf_s:g}",
        offered_mbps=rate * _COMMAND_SIZE * 8 / 1e6,
        delivered_mbps=in_window / duration * _COMMAND_SIZE * 8 / 1e6,
        msgs_per_s=in_window / duration,
        latency_ms=p50 * 1e3,
        cpu_pct=100.0 * mrp.rings[0].coordinator.node.cpu.busy_between(warmup, end) / duration,
        extra={
            "n_sessions": n_sessions,
            "zipf_s": zipf_s,
            "p50_ms": p50 * 1e3,
            "p99_ms": p99 * 1e3,
            "p999_ms": p999 * 1e3,
            "cdf_ms": [(v * 1e3, q) for v, q in population.request_latency.cdf(10)],
            "arrivals": population.arrivals.value,
            "requests": population.requests.value,
            "completions": population.completions.value,
            "timeouts": population.timeouts.value,
            "retries": population.retries.value,
            "failovers": population.failovers.value,
            "abandoned": population.abandoned.value,
            "shed": shed,
            "delayed": delayed,
        },
    )


def run_per_actor_point(
    n_sessions: int,
    rate: float,
    n_partitions: int = 2,
    duration: float = 1.0,
    warmup: float = 0.2,
    seed: int = 1,
    label: str | None = None,
):
    """The per-actor baseline: ``n_sessions`` SmrClients at ``rate/n`` each.

    Offered load matches :func:`run_population_point` with ``write_only``
    — same total request rate, same command size, same service — but
    every session owns a node, a proposer, a generator, and a timer.
    """
    from .runner import PointResult, _window

    mrp, partitioner = _build_service(n_partitions, seed)
    rng = mrp.sim.random.get("bench.per_actor_keys")
    end = warmup + duration
    clients = []
    for i in range(n_sessions):
        client = SmrClient(mrp, partitioner, name=f"client{i}")
        # Stagger starts uniformly over one per-client gap: deterministic
        # generators otherwise all fire at t=0, bunching the aggregate
        # load into periodic spikes instead of a steady ``rate``.
        OpenLoopGenerator(
            mrp.sim,
            lambda c=client: c.insert(rng.randrange(partitioner.key_space)),
            ConstantRate(rate / n_sessions),
            stop_at=end,
            name=f"gen{i}",
        ).start(delay=i / rate)
        clients.append(client)
    completed = _window(
        lambda: sum(c.completions.value for c in clients), mrp.sim, warmup
    )
    mrp.run(until=end)
    in_window = completed()
    samples: list[float] = []
    for client in clients:
        samples.extend(client.request_latency._samples)
    samples.sort()
    p50 = samples[len(samples) // 2] if samples else 0.0
    return PointResult(
        label=label or f"{n_sessions} actor clients",
        offered_mbps=rate * _COMMAND_SIZE * 8 / 1e6,
        delivered_mbps=in_window / duration * _COMMAND_SIZE * 8 / 1e6,
        msgs_per_s=in_window / duration,
        latency_ms=p50 * 1e3,
        cpu_pct=100.0 * mrp.rings[0].coordinator.node.cpu.busy_between(warmup, end) / duration,
        extra={"n_sessions": n_sessions, "completions": in_window},
    )
