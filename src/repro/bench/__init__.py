"""The benchmark harness: experiment runners and report formatting.

One runner per experiment family (steady-state points and time series);
the ``benchmarks/`` directory contains one pytest-benchmark module per
paper figure, each of which calls into this package and prints the rows
the figure reports. ``repro.bench.perf`` adds the wall-clock suite
(``python -m repro bench`` -> ``BENCH_perf.json``) — its ``time_call``
timer and ``merge_results`` report hook are re-exported here.
"""

from .perf import merge_results, time_call
from .report import emit, format_table, series_to_rows
from .runner import (
    PointResult,
    SeriesResult,
    run_coordinator_failure_timeseries,
    run_lcr_point,
    run_mencius_point,
    run_multiring_point,
    run_partitioned_single_ring_point,
    run_single_ring_point,
    run_spread_point,
    run_two_ring_parameter_point,
    run_two_ring_timeseries,
)

__all__ = [
    "PointResult",
    "SeriesResult",
    "emit",
    "format_table",
    "merge_results",
    "time_call",
    "run_coordinator_failure_timeseries",
    "run_lcr_point",
    "run_mencius_point",
    "run_multiring_point",
    "run_partitioned_single_ring_point",
    "run_single_ring_point",
    "run_spread_point",
    "run_two_ring_parameter_point",
    "run_two_ring_timeseries",
    "series_to_rows",
]
