"""Plain-text plotting for benchmark reports.

The paper's Figures 9-12 are time-series plots; rendering them as ASCII
charts in the benchmark output makes the shapes (rate steps, latency
climbs, outage gaps, catch-up spikes) reviewable without a plotting
stack. Pure text, deterministic, no dependencies.
"""

from __future__ import annotations

__all__ = ["ascii_series", "ascii_multi_series", "sparkline"]

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: list[float], width: int = 60) -> str:
    """One-line intensity strip of a value series.

    >>> sparkline([0, 1, 2, 3], width=4)
    ' -+@'
    """
    if not values:
        return ""
    if len(values) > width:
        # Downsample by max-pooling so spikes stay visible.
        bucket = len(values) / width
        pooled = []
        for i in range(width):
            lo = int(i * bucket)
            hi = max(lo + 1, int((i + 1) * bucket))
            pooled.append(max(values[lo:hi]))
        values = pooled
    top = max(values)
    if top <= 0:
        return " " * len(values)
    chars = []
    for v in values:
        idx = int(round(v / top * (len(_SPARK_LEVELS) - 1)))
        chars.append(_SPARK_LEVELS[max(0, min(idx, len(_SPARK_LEVELS) - 1))])
    return "".join(chars)


def ascii_series(
    series: list[tuple[float, float]],
    title: str = "",
    height: int = 10,
    width: int = 64,
    unit: str = "",
) -> str:
    """Render one (t, value) series as a fixed-size ASCII chart."""
    if not series:
        return f"{title}\n(no data)"
    times = [t for t, _ in series]
    values = [v for _, v in series]
    top = max(values)
    lines = [title] if title else []
    if top <= 0:
        lines.append("(all zero)")
        return "\n".join(lines)
    # Downsample/interpolate columns over the time span.
    cols = []
    t0, t1 = times[0], times[-1] if times[-1] > times[0] else times[0] + 1
    for c in range(width):
        target = t0 + (t1 - t0) * c / (width - 1 if width > 1 else 1)
        nearest = min(range(len(times)), key=lambda i: abs(times[i] - target))
        cols.append(values[nearest])
    for row in range(height, 0, -1):
        threshold = top * (row - 0.5) / height
        body = "".join("#" if v >= threshold else " " for v in cols)
        label = f"{top * row / height:10.1f}{unit} |" if row in (height, 1) else " " * (11 + len(unit)) + "|"
        lines.append(label + body)
    lines.append(" " * (11 + len(unit)) + "+" + "-" * width)
    lines.append(
        " " * (12 + len(unit))
        + f"t={t0:g}s"
        + " " * max(1, width - len(f"t={t0:g}s") - len(f"t={t1:g}s"))
        + f"t={t1:g}s"
    )
    return "\n".join(lines)


def ascii_multi_series(
    named_series: dict[str, list[tuple[float, float]]],
    title: str = "",
    width: int = 60,
) -> str:
    """Render several series as aligned sparklines with shared labels."""
    lines = [title] if title else []
    label_width = max((len(name) for name in named_series), default=0)
    for name, series in named_series.items():
        values = [v for _, v in series]
        peak = max(values, default=0.0)
        lines.append(f"{name.ljust(label_width)} |{sparkline(values, width)}| peak {peak:.1f}")
    return "\n".join(lines)
