"""Geo-distribution experiment runners ("Stretching Multi-Ring Paxos").

Three measurement shapes reproduce that paper's headline results on the
multi-datacenter fabric (:mod:`repro.sim.topology`):

* **Stretch vs throughput** — moving a ring member a WAN hop away leaves
  throughput essentially unchanged: Ring Paxos pipelines instances, so
  added propagation delay costs latency, not capacity.
* **Slowest-member latency** — decision latency tracks the WAN RTT of the
  *farthest* ring member, wherever it sits in the ring.
* **Placement** — putting a group's ring inside its subscribers' region
  (the latency-aware default) beats placing it a WAN hop away by roughly
  the link RTT per delivery.

Same contract as :mod:`repro.bench.runner`: every runner is a pure
function of JSON-primitive kwargs, addressable as a
``repro.bench.geo:<name>`` spec, one fresh simulator per point.

A WAN-stretched ring needs its protocol knobs scaled to the
bandwidth-delay product: the coordinator's in-flight window must cover
``rate x decision latency`` instances, and its Phase 2A retry must
exceed the decision latency or it re-multicasts every in-flight instance
into the WAN link. :func:`_stretch_knobs` centralizes that scaling.
"""

from __future__ import annotations

from ..calibration import DEFAULT_VALUE_SIZE, bytes_per_s_to_mbps, mbps_to_bytes_per_s
from ..core.config import MultiRingConfig
from ..core.deployment import MultiRingPaxos
from ..ringpaxos.builder import build_ring
from ..sim.simulator import Simulator
from ..sim.topology import GeoNetwork, Topology
from ..workload.generator import OpenLoopGenerator
from ..workload.rates import ConstantRate
from .runner import PointResult, _window

__all__ = ["run_geo_ring_point", "run_geo_placement_point"]


def _stretch_knobs(rate_msgs: float, far_s: float) -> dict:
    """Window and retry sized to the ring's bandwidth-delay product.

    Decision latency of a ring with one member ``far_s`` away is about
    one WAN RTT (2A out + 2B back), so the coordinator must keep
    ``rate x RTT`` instances in flight and must not retry before a
    decision can possibly return.
    """
    decision_latency = 2.0 * far_s + 0.005
    return {
        "window": max(48, int(2.0 * rate_msgs * decision_latency)),
        "retry_timeout": max(0.02, 4.0 * decision_latency),
    }


def run_geo_ring_point(
    far_ms: float,
    far_position: int = 0,
    offered_mbps: float = 500.0,
    n_acceptors: int = 3,
    duration: float = 2.0,
    warmup: float = 1.0,
    message_size: int = DEFAULT_VALUE_SIZE,
    seed: int = 1,
) -> PointResult:
    """One ring with one member stretched ``far_ms`` (one-way) away.

    ``far_ms = 0`` is the one-region baseline on the same fabric. The
    acceptor at ring index ``far_position`` moves to the remote region;
    coordinator, remaining acceptors, learner, and proposer stay local —
    the paper's "stretch one member at a time" setup. The coordinator
    (ring index ``n_acceptors - 1``) is pinned local, so ``far_position``
    ranges over the non-coordinator indices.
    """
    if not 0 <= far_position < n_acceptors - 1:
        raise ValueError("far_position must index a non-coordinator acceptor")
    far_s = far_ms * 1e-3
    sim = Simulator(seed=seed)
    if far_ms > 0:
        topo = Topology(["dc0", "dc1"], wan_latency=far_s)
        regions = ["dc0"] * n_acceptors
        regions[far_position] = "dc1"
    else:
        topo = Topology.single()
        regions = ["dc0"] * n_acceptors
    net = GeoNetwork(sim, topo)
    rate = mbps_to_bytes_per_s(offered_mbps) / message_size
    ring = build_ring(
        sim, net,
        n_acceptors=n_acceptors,
        acceptor_regions=regions,
        learner_regions=["dc0"],
        proposer_regions=["dc0"],
        **_stretch_knobs(rate, far_s),
    )
    prop = ring.proposers[0]
    learner = ring.learners[0]
    OpenLoopGenerator(sim, lambda: prop.multicast(None, message_size), ConstantRate(rate)).start()
    end = warmup + duration
    delivered = _window(lambda: learner.delivered_bytes.value, sim, warmup)
    messages = _window(lambda: learner.delivered_messages.value, sim, warmup)
    sim.run(until=end)
    return PointResult(
        label=f"stretch {far_ms:g}ms@{far_position}",
        offered_mbps=offered_mbps,
        delivered_mbps=bytes_per_s_to_mbps(delivered() / duration),
        msgs_per_s=messages() / duration,
        latency_ms=learner.latency.trimmed_mean() * 1e3,
        cpu_pct=100.0 * ring.coordinator.node.cpu.busy_between(warmup, end) / duration,
        extra={"slowest_rtt_ms": 2.0 * far_ms},
    )


def run_geo_placement_point(
    placement: str,
    wan_ms: float = 25.0,
    offered_mbps: float = 200.0,
    duration: float = 2.0,
    warmup: float = 1.0,
    message_size: int = DEFAULT_VALUE_SIZE,
    seed: int = 1,
) -> PointResult:
    """Group subscribers in one region; its ring in-region or a hop away.

    ``placement="local"`` exercises the latency-aware default —
    :func:`~repro.core.placement.place_rings` puts the ring where the
    group's subscribers are. ``placement="remote"`` pins the ring to the
    other region via ``ring_regions``, the layout the paper warns about:
    every delivery then pays the submission leg plus the decision leg
    over the WAN.
    """
    if placement not in ("local", "remote"):
        raise ValueError(f"placement must be 'local' or 'remote', not {placement!r}")
    topo = Topology(["dc0", "dc1"], wan_latency=wan_ms * 1e-3)
    mrp = MultiRingPaxos(
        MultiRingConfig(
            n_groups=1,
            seed=seed,
            topology=topo,
            group_regions=["dc1"],
            ring_regions=["dc0"] if placement == "remote" else None,
        )
    )
    sim = mrp.sim
    learner = mrp.add_learner(groups=[0])  # region-local by default: dc1
    prop = mrp.add_proposer(region="dc1")
    rate = mbps_to_bytes_per_s(offered_mbps) / message_size
    OpenLoopGenerator(
        sim, lambda: prop.multicast(0, None, message_size), ConstantRate(rate)
    ).start()
    end = warmup + duration
    delivered = _window(lambda: learner.delivered_bytes.value, sim, warmup)
    messages = _window(lambda: learner.delivered_messages.value, sim, warmup)
    mrp.run(until=end)
    ring_region = mrp.ring_placement[0]
    coord = mrp.rings[0].coordinator.node
    return PointResult(
        label=f"{placement} ring ({ring_region})",
        offered_mbps=offered_mbps,
        delivered_mbps=bytes_per_s_to_mbps(delivered() / duration),
        msgs_per_s=messages() / duration,
        latency_ms=learner.latency.trimmed_mean() * 1e3,
        cpu_pct=100.0 * coord.cpu.busy_between(warmup, end) / duration,
        extra={"ring_region": ring_region, "wan_rtt_ms": 2.0 * wan_ms},
    )
