"""Deterministic simulation checking: oracles, fault fuzzing, shrinking.

This package is the repo's FoundationDB-style testing layer. It has three
parts, composable separately or through the fuzz driver:

* :mod:`repro.check.oracles` — passive safety oracles (agreement,
  integrity, per-ring total order, cross-ring partial order, replica
  convergence) that subscribe to the probe bus and raise
  :class:`OracleViolation` the moment a property breaks;
* :mod:`repro.check.schedule` / :mod:`repro.check.generator` —
  JSON-replayable fault schedules and their seeded random generation;
* :mod:`repro.check.driver` — the ``repro fuzz`` driver: seeded cases,
  liveness-after-heal, greedy schedule shrinking, failure files.
"""

from .driver import (
    CaseConfig,
    CaseResult,
    draw_config,
    failure_to_dict,
    fuzz_main,
    load_failure,
    run_case,
    shrink,
)
from .generator import Topology, generate_schedule, topology_of
from .oracles import AdmissionOracles, OracleViolation, SafetyOracles, oracle_watch
from .schedule import Schedule, ScheduleRunner, ScheduleStep

__all__ = [
    "AdmissionOracles",
    "CaseConfig",
    "CaseResult",
    "OracleViolation",
    "SafetyOracles",
    "Schedule",
    "ScheduleRunner",
    "ScheduleStep",
    "Topology",
    "draw_config",
    "failure_to_dict",
    "fuzz_main",
    "generate_schedule",
    "load_failure",
    "oracle_watch",
    "run_case",
    "shrink",
    "topology_of",
]
