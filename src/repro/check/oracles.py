"""Passive safety oracles for Multi-Ring Paxos simulations.

A :class:`SafetyOracles` instance subscribes to the protocol-level probe
events (``repro.obs``) that proposers, learners and SMR replicas emit and
continuously verifies the atomic-multicast specification (paper,
Section II-B):

* **Agreement** — no two learners decide different items for the same
  (ring, consensus instance);
* **Integrity** — every delivered message was proposed, and each learner
  delivers it at most once;
* **Per-ring total order & gap-freedom** — each learner's decided stream
  covers logical instances contiguously from zero (data batches advance by
  one, skip ranges by their length), so the skip path can never leak a gap
  or a regression;
* **Cross-ring partial order** — learners with overlapping subscriptions
  deliver their common messages in the same relative order
  (:meth:`SafetyOracles.check_final`, since the property is over whole
  delivery histories);
* **Replica convergence** — SMR replicas of one partition apply their
  common commands in the same order (also in the final check);
* **Epoch monotonicity** — every role that reports a configuration epoch
  (``reconfig.epoch``) reports a non-decreasing sequence: a role going
  *back* to an older configuration would re-split the very group streams
  the cuts just stitched together;
* **Group FIFO across epochs** — each learner delivers each sender's
  messages of one group in strictly increasing seq order
  (:meth:`SafetyOracles.check_final`). Within one ring this is implied by
  ring order; the oracle's force is at reconfiguration boundaries, where
  a group's stream moves between rings and a lost, duplicated or
  reordered hand-off would show up as a seq regression or repeat.

The ``reconfig.drain`` probe is bookkeeping rather than a property: a
learner joining a ring mid-stream at the epoch's join instance J starts
its decided stream at J by design, so the probe re-bases that ring
learner's expected instance (otherwise ring order would read the
documented jump as a gap).

Oracles are *passive*: they subscribe to a probe bus, never schedule
simulation events, and therefore never perturb a run — an instrumented
simulation stays bit-for-bit identical to a bare one. Point-in-time
violations raise :class:`OracleViolation` immediately, from inside the
event that caused them, with enough context to replay the run.

Crash recovery makes replay legitimate: a restarted replica rolls its
learner back to a checkpoint and re-executes the suffix. The recovery
probes (``learner.rollback``, ``learner.rewind``, ``replica.restore``)
tell the oracles to rewind their logs to the same point, so the replayed
suffix is re-checked — against the agreement fingerprints recorded the
first time around, which a diverging replay would trip immediately. A
rollback may never move *forward*: that would let a learner skip the
very instances the oracles are watching.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from ..errors import ReproError
from ..obs.probe import (
    ADMISSION_DELAY,
    ADMISSION_SHED,
    LEARNER_DECIDE,
    LEARNER_DELIVER,
    LEARNER_REWIND,
    LEARNER_ROLLBACK,
    POPULATION_COMPLETE,
    PROPOSER_MULTICAST,
    RECONFIG_DRAIN,
    RECONFIG_EPOCH,
    REPLICA_APPLY,
    REPLICA_RESTORE,
    ProbeBus,
    ProbeEvent,
)
from ..sim.simulator import Simulator, observe_simulators

__all__ = ["AdmissionOracles", "OracleViolation", "SafetyOracles", "oracle_watch"]


class OracleViolation(ReproError):
    """A safety oracle detected a specification violation.

    Attributes
    ----------
    oracle:
        Which property broke: ``agreement``, ``integrity``, ``ring-order``,
        ``partial-order``, ``replica-order``, ``epoch-order``,
        ``group-fifo`` or (from the fuzz driver) ``liveness``.
    time:
        Simulated time of the offending event (0 for whole-history checks).
    source:
        The emitting process (learner/replica name), when applicable.
    context:
        Free-form details (instances, fingerprints, message ids) for the
        failure report.
    """

    def __init__(
        self,
        oracle: str,
        message: str,
        *,
        time: float = 0.0,
        source: str = "",
        context: dict | None = None,
    ) -> None:
        self.oracle = oracle
        self.time = time
        self.source = source
        self.context = dict(context or {})
        where = f" at {source}" if source else ""
        super().__init__(f"[{oracle}] t={time:.6f}{where}: {message}")


class SafetyOracles:
    """Continuously verify atomic-multicast safety over probe events.

    One instance watches one simulation (state is keyed by ring ids and
    process names, which are unique within a deployment). Attach with
    :meth:`attach` — it reuses the simulator's probe bus or installs one —
    or :meth:`subscribe` against an existing bus. Call :meth:`check_final`
    after the run for the whole-history properties.
    """

    def __init__(self) -> None:
        # (ring, instance) -> decided-item fingerprint (first decider wins).
        self._decided: dict[tuple[int, int], tuple] = {}
        # ring-learner process name -> next expected logical instance.
        self._next_instance: dict[str, int] = {}
        # Message identity is (sender, seq, group): per-ring proposers
        # each run their own seq counter, so (sender, seq) alone collides
        # across rings; group disambiguates (one ring orders a group).
        self._proposed: set[tuple[str, int, int]] = set()
        self._tracked_senders: set[str] = set()
        # learner process name -> ordered log of (sender, seq, group).
        self._delivery_log: dict[str, list[tuple[str, int, int]]] = {}
        self._delivered: dict[str, set[tuple[str, int, int]]] = {}
        # (partition, replica process name) -> ordered apply log.
        self._apply_log: dict[tuple[int, str], list[tuple[str, int, str]]] = {}
        # ring id -> highest decided logical frontier any learner reached.
        self._ring_frontier: dict[int, int] = {}
        # probe source -> highest configuration epoch it has reported.
        self._epochs: dict[str, int] = {}
        self.events_checked = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, sim: Simulator) -> "SafetyOracles":
        """Subscribe to ``sim``'s probe bus, installing one if absent."""
        if sim.probe is None:
            sim.attach_probe(ProbeBus())
        self.subscribe(sim.probe)
        return self

    def subscribe(self, bus: ProbeBus) -> "SafetyOracles":
        """Subscribe the oracle handlers to ``bus``; returns self."""
        bus.subscribe(self._on_propose, kind=PROPOSER_MULTICAST)
        bus.subscribe(self._on_decide, kind=LEARNER_DECIDE)
        bus.subscribe(self._on_deliver, kind=LEARNER_DELIVER)
        bus.subscribe(self._on_apply, kind=REPLICA_APPLY)
        bus.subscribe(self._on_rollback, kind=LEARNER_ROLLBACK)
        bus.subscribe(self._on_rewind, kind=LEARNER_REWIND)
        bus.subscribe(self._on_restore, kind=REPLICA_RESTORE)
        bus.subscribe(self._on_reconfig_epoch, kind=RECONFIG_EPOCH)
        bus.subscribe(self._on_reconfig_drain, kind=RECONFIG_DRAIN)
        return self

    # ------------------------------------------------------------------
    # Incremental checks (raise from inside the offending event)
    # ------------------------------------------------------------------
    def _on_propose(self, ev: ProbeEvent) -> None:
        self.events_checked += 1
        sender = ev.data["sender"]
        self._proposed.add((sender, ev.data["seq"], ev.data["group"]))
        self._tracked_senders.add(sender)

    def _on_decide(self, ev: ProbeEvent) -> None:
        self.events_checked += 1
        ring = ev.data["ring"]
        instance = ev.data["instance"]
        fingerprint = ev.data["item"]
        key = (ring, instance)
        previous = self._decided.get(key)
        if previous is None:
            self._decided[key] = fingerprint
        elif previous != fingerprint:
            raise OracleViolation(
                "agreement",
                f"ring {ring} instance {instance} decided twice with different items",
                time=ev.time,
                source=ev.source,
                context={"ring": ring, "instance": instance,
                         "first": previous, "second": fingerprint},
            )
        expected = self._next_instance.get(ev.source, 0)
        if instance != expected:
            kind = "gap" if instance > expected else "regression"
            raise OracleViolation(
                "ring-order",
                f"ring {ring} decided instance {instance}, expected {expected} ({kind})",
                time=ev.time,
                source=ev.source,
                context={"ring": ring, "instance": instance, "expected": expected},
            )
        self._next_instance[ev.source] = instance + ev.data["count"]
        frontier = instance + ev.data["count"]
        if frontier > self._ring_frontier.get(ring, 0):
            self._ring_frontier[ring] = frontier

    def _on_deliver(self, ev: ProbeEvent) -> None:
        self.events_checked += 1
        learner = ev.source
        message = (ev.data["sender"], ev.data["seq"], ev.data["group"])
        seen = self._delivered.setdefault(learner, set())
        if message in seen:
            raise OracleViolation(
                "integrity",
                f"message {message} delivered twice",
                time=ev.time,
                source=learner,
                context={"message": message},
            )
        seen.add(message)
        self._delivery_log.setdefault(learner, []).append(message)
        # The sender is a tracked proposer: the delivery must match a
        # proposal exactly. (Values injected below the proposer API —
        # hand-built streams in unit tests, interop feeds — have no
        # proposal record and are exempt.)
        if ev.data["sender"] in self._tracked_senders and message not in self._proposed:
            raise OracleViolation(
                "integrity",
                f"delivered message {message} was never proposed",
                time=ev.time,
                source=learner,
                context={"message": message},
            )

    def _on_apply(self, ev: ProbeEvent) -> None:
        self.events_checked += 1
        key = (ev.data["partition"], ev.source)
        self._apply_log.setdefault(key, []).append(
            (ev.data["client"], ev.data["req_id"], ev.data["op"])
        )

    # ------------------------------------------------------------------
    # Reconfiguration events
    # ------------------------------------------------------------------
    def _on_reconfig_epoch(self, ev: ProbeEvent) -> None:
        """A role adopted (or the manager installed) a configuration epoch.

        Epochs must be non-decreasing per source. Equal repeats are fine:
        the manager reports each epoch twice (operation start and done),
        and a learner may see the same cut from several rings.
        """
        self.events_checked += 1
        epoch = ev.data["epoch"]
        highest = self._epochs.get(ev.source, 0)
        if epoch < highest:
            raise OracleViolation(
                "epoch-order",
                f"{ev.data.get('role', 'role')} reported epoch {epoch} after "
                f"already reaching epoch {highest}",
                time=ev.time,
                source=ev.source,
                context={"epoch": epoch, "highest": highest},
            )
        self._epochs[ev.source] = epoch

    def _on_reconfig_drain(self, ev: ProbeEvent) -> None:
        """A learner joined a ring mid-stream at the epoch's join instance.

        The new ring learner starts consuming at the join cut J — by the
        remap protocol nothing of its groups was ordered on that ring
        below J — so the ring-order oracle's expectation is re-based to J
        rather than reading the documented jump as a gap. The probe fires
        before the ring learner's first decide, so re-basing here never
        races the check in :meth:`_on_decide`.
        """
        self.events_checked += 1
        self._next_instance[ev.data["ring_source"]] = ev.data["instance"]

    # ------------------------------------------------------------------
    # Recovery events: rewind the logs to the restored checkpoint
    # ------------------------------------------------------------------
    def _on_rollback(self, ev: ProbeEvent) -> None:
        """A ring learner rewound its decide position (replica recovery)."""
        self.events_checked += 1
        instance = ev.data["instance"]
        expected = self._next_instance.get(ev.source, 0)
        if instance > expected:
            raise OracleViolation(
                "ring-order",
                f"rollback to instance {instance} skips past the decided "
                f"position {expected}",
                time=ev.time,
                source=ev.source,
                context={"instance": instance, "expected": expected},
            )
        self._next_instance[ev.source] = instance
        # The replayed suffix re-enters _on_decide and is re-checked
        # against the agreement fingerprints recorded the first time.

    def _on_rewind(self, ev: ProbeEvent) -> None:
        """A multi-ring learner rewound its merged delivery sequence."""
        self.events_checked += 1
        count = ev.data["delivered"]
        log = self._delivery_log.get(ev.source, [])
        if count > len(log):
            raise OracleViolation(
                "integrity",
                f"rewind to delivery {count} but only {len(log)} were delivered",
                time=ev.time,
                source=ev.source,
                context={"count": count, "delivered": len(log)},
            )
        del log[count:]
        self._delivered[ev.source] = set(log)

    def _on_restore(self, ev: ProbeEvent) -> None:
        """A replica reloaded a checkpoint: truncate its apply log to it."""
        self.events_checked += 1
        count = ev.data["applied"]
        log = self._apply_log.get((ev.data["partition"], ev.source), [])
        if count > len(log):
            raise OracleViolation(
                "replica-order",
                f"checkpoint claims {count} applied commands but only "
                f"{len(log)} were observed",
                time=ev.time,
                source=ev.source,
                context={"count": count, "applied": len(log)},
            )
        del log[count:]

    # ------------------------------------------------------------------
    # Whole-history checks
    # ------------------------------------------------------------------
    def check_final(self) -> None:
        """Verify the order properties that span whole delivery histories.

        Raises :class:`OracleViolation` if two learners deliver their
        common messages in different relative orders (uniform partial
        order), a learner delivers one sender's messages of one group out
        of seq order (group FIFO — the property reconfiguration epochs
        must preserve across ring moves), or two replicas of one
        partition apply their common commands in different orders.
        """
        self._check_pairwise_common_order(
            self._delivery_log, oracle="partial-order", what="messages"
        )
        self._check_group_fifo()
        by_partition: dict[int, dict[str, list]] = {}
        for (partition, replica), log in self._apply_log.items():
            by_partition.setdefault(partition, {})[replica] = log
        for partition, logs in by_partition.items():
            self._check_pairwise_common_order(
                logs, oracle="replica-order", what=f"partition {partition} commands"
            )

    def _check_group_fifo(self) -> None:
        """Per learner, per (sender, group): delivered seqs strictly rise.

        Within one ring this follows from per-ring total order plus the
        coordinator's in-order ingestion. The oracle earns its keep at
        epoch boundaries: when a group moves rings, the sender's seq is
        bumped past its old ring's stream and bounced values keep their
        old seqs, so a hand-off that loses the boundary ordering — a
        new-ring value slipping in front of the drained suffix, or a
        bounced value delivered twice under one seq — reads as a seq
        repeat or regression here.
        """
        for learner, log in sorted(self._delivery_log.items()):
            last: dict[tuple[str, int], int] = {}
            for sender, seq, group in log:
                key = (sender, group)
                prev = last.get(key)
                if prev is not None and seq <= prev:
                    raise OracleViolation(
                        "group-fifo",
                        f"sender {sender} group {group} delivered seq {seq} "
                        f"after seq {prev}",
                        source=learner,
                        context={"sender": sender, "group": group,
                                 "seq": seq, "previous": prev},
                    )
                last[key] = seq

    @staticmethod
    def _check_pairwise_common_order(logs: dict[str, list], oracle: str, what: str) -> None:
        names = sorted(logs)
        for i, a in enumerate(names):
            log_a = logs[a]
            set_a = set(log_a)
            for b in names[i + 1:]:
                log_b = logs[b]
                common = set_a & set(log_b)
                if not common:
                    continue
                seq_a = [m for m in log_a if m in common]
                seq_b = [m for m in log_b if m in common]
                if seq_a != seq_b:
                    divergence = next(
                        (idx, x, y) for idx, (x, y) in enumerate(zip(seq_a, seq_b)) if x != y
                    )
                    raise OracleViolation(
                        oracle,
                        f"{a} and {b} deliver common {what} in different orders "
                        f"(first divergence at common index {divergence[0]}: "
                        f"{divergence[1]} vs {divergence[2]})",
                        context={"a": a, "b": b, "index": divergence[0],
                                 "a_delivers": divergence[1], "b_delivers": divergence[2]},
                    )

    # ------------------------------------------------------------------
    # Introspection (used by the fuzz driver's liveness check)
    # ------------------------------------------------------------------
    @property
    def proposed_messages(self) -> list[tuple[str, int, int]]:
        """All proposals seen, as sorted (sender, seq, group) tuples."""
        return sorted(self._proposed)

    def delivered_by(self, learner: str) -> set[tuple[str, int, int]]:
        """The (sender, seq, group) set a learner has delivered."""
        return set(self._delivered.get(learner, ()))

    def delivery_count(self, learner: str) -> int:
        """Number of messages a learner has delivered."""
        return len(self._delivery_log.get(learner, ()))

    def ring_frontiers(self) -> dict[int, int]:
        """Highest decided logical frontier any learner reached, per ring.

        The liveness-after-restart check snapshots this at heal time:
        every restarted learner must re-reach these positions within the
        grace window.
        """
        return dict(self._ring_frontier)


class AdmissionOracles:
    """Verify the admission-control contract over probe events.

    Watches the ``admission.delay`` / ``admission.shed`` events the
    :class:`~repro.core.admission.AdmissionController` emits, plus the
    ``population.complete`` acknowledgements of the flyweight client
    tier, and checks:

    * **Bounded intake** — the delayed-intake queue never exceeds its
      configured bound, and a shed only ever happens with the queue
      actually full (shed-with-slack would mean admission rejects work
      it had room for);
    * **No acked request dropped** — a shed never names a request id the
      client tier already saw completed. Sheds are synchronous and
      pre-sequence-number by construction; this oracle is the end-to-end
      probe-level witness of that property under crash/overload
      schedules.

    Request ids are taken to be unique across the deployment, which
    holds for a single client-population tier (the fuzz ``overload``
    profile builds exactly one).
    """

    def __init__(self) -> None:
        self._completed: set[object] = set()
        self.events_checked = 0

    def attach(self, sim: Simulator) -> "AdmissionOracles":
        """Subscribe to ``sim``'s probe bus, installing one if absent."""
        if sim.probe is None:
            sim.attach_probe(ProbeBus())
        self.subscribe(sim.probe)
        return self

    def subscribe(self, bus: ProbeBus) -> "AdmissionOracles":
        """Subscribe the oracle handlers to ``bus``; returns self."""
        bus.subscribe(self._on_delay, kind=ADMISSION_DELAY)
        bus.subscribe(self._on_shed, kind=ADMISSION_SHED)
        bus.subscribe(self._on_complete, kind=POPULATION_COMPLETE)
        return self

    def _on_delay(self, ev: ProbeEvent) -> None:
        self.events_checked += 1
        depth, bound = ev.data["depth"], ev.data["bound"]
        if depth > bound:
            raise OracleViolation(
                "admission",
                f"intake queue depth {depth} exceeds its bound {bound}",
                time=ev.time,
                source=ev.source,
                context={"depth": depth, "bound": bound},
            )

    def _on_shed(self, ev: ProbeEvent) -> None:
        self.events_checked += 1
        depth, bound = ev.data["depth"], ev.data["bound"]
        if depth < bound:
            raise OracleViolation(
                "admission",
                f"submission shed with intake slack ({depth} of {bound} queued)",
                time=ev.time,
                source=ev.source,
                context={"depth": depth, "bound": bound},
            )
        req_id = ev.data["req_id"]
        if req_id is not None and req_id in self._completed:
            raise OracleViolation(
                "admission",
                f"shed names request {req_id}, already acknowledged to the client",
                time=ev.time,
                source=ev.source,
                context={"req_id": req_id},
            )

    def _on_complete(self, ev: ProbeEvent) -> None:
        self.events_checked += 1
        self._completed.add(ev.data["req_id"])


@contextmanager
def oracle_watch() -> Iterator[list[SafetyOracles]]:
    """Attach a :class:`SafetyOracles` to every simulator created inside.

    The integration and property suites run under this watch (see their
    ``conftest.py``): any simulation they build gets the full oracle set
    for free, and the whole-history checks run on exit. Yields the list of
    attached oracles (one per simulator, in creation order).
    """
    attached: list[SafetyOracles] = []

    def on_simulator(sim: Simulator) -> None:
        attached.append(SafetyOracles().attach(sim))

    remove = observe_simulators(on_simulator)
    try:
        yield attached
    finally:
        remove()
        for oracles in attached:
            oracles.check_final()
