"""Seeded random fault-schedule generation.

Given a deployment's topology and a single :class:`random.Random`, draw a
:class:`~repro.check.schedule.Schedule` composing process crashes (with
optional restarts), network partitions, uniform-loss phases, and
slow-network / slow-disk phases. The same seed always yields the same
schedule — that, plus the deterministic simulator underneath, is what
makes every fuzz failure a reproducible artifact.

Faults land inside ``[5%, 85%]`` of the run's workload window, leaving the
tail (plus the driver's forced heal-everything epilogue) for recovery.
Stateful fault kinds — partition, loss, slow-net, slow-disk — draw
*disjoint* windows per kind, so one partition object and one tunable loss
suffice and phase starts/ends never interleave ambiguously.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .schedule import Schedule, ScheduleStep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.deployment import MultiRingPaxos

__all__ = ["Topology", "topology_of", "generate_schedule"]


@dataclass(frozen=True, slots=True)
class Topology:
    """What the generator needs to know about a deployment.

    ``crash_targets`` are role names the schedule runner resolves
    (``coordinator:R``, ``acceptor:R:I``, ``learner:I``, ``proposer:I``);
    ``nodes`` are machine names eligible for partition islands;
    ``wan_pairs`` are region pairs whose WAN link can be cut (empty on a
    single-switch fabric); ``groups`` and ``rings`` are the deployment's
    atomic-multicast group ids and ring ids, the operands of the
    elasticity steps (remap / ring_split / ring_merge).
    """

    crash_targets: tuple[str, ...]
    nodes: tuple[str, ...]
    wan_pairs: tuple[tuple[str, str], ...] = ()
    groups: tuple[int, ...] = ()
    rings: tuple[int, ...] = ()


def topology_of(mrp: "MultiRingPaxos") -> Topology:
    """Extract the crashable roles and partitionable machines of ``mrp``."""
    targets: list[str] = []
    for ring_id in sorted(mrp.rings):
        targets.append(f"coordinator:{ring_id}")
        for i in range(len(mrp.rings[ring_id].acceptors)):
            targets.append(f"acceptor:{ring_id}:{i}")
    for i in range(len(mrp.learners)):
        targets.append(f"learner:{i}")
    for i in range(len(mrp.proposers)):
        targets.append(f"proposer:{i}")
    wan_pairs: tuple[tuple[str, str], ...] = ()
    geo = getattr(mrp.network, "topology", None)
    if geo is not None:
        regions = geo.regions
        wan_pairs = tuple(
            (a, b)
            for i, a in enumerate(regions)
            for b in regions[i + 1:]
        )
    return Topology(
        crash_targets=tuple(targets),
        nodes=tuple(sorted(mrp.network.nodes)),
        wan_pairs=wan_pairs,
        groups=tuple(mrp.registry.group_ids()),
        rings=tuple(sorted(mrp.rings)),
    )


def _phase_windows(
    rng: random.Random, lo: float, hi: float, count: int
) -> list[tuple[float, float]]:
    """``count`` disjoint (start, end) windows inside [lo, hi].

    Drawn as 2·count sorted uniform points paired off — disjoint by
    construction. Degenerate windows (shorter than 1% of the span) are
    discarded rather than stretched, keeping the draw unbiased.
    """
    if count <= 0:
        return []
    points = sorted(rng.uniform(lo, hi) for _ in range(2 * count))
    min_width = 0.01 * (hi - lo)
    return [
        (points[2 * i], points[2 * i + 1])
        for i in range(count)
        if points[2 * i + 1] - points[2 * i] >= min_width
    ]


def generate_schedule(
    rng: random.Random, topology: Topology, duration: float, profile: str = "default"
) -> Schedule:
    """Draw a random fault schedule for a run of ``duration`` seconds.

    ``profile`` selects the fault mix. ``"default"`` is the original
    balanced blend; its rng consumption is frozen — corpus seeds must
    keep reproducing byte-identical schedules. ``"restart-heavy"`` draws
    from a separate branch (free to evolve): several short crash/restart
    pairs, every crash restarted on-schedule, aimed at the recovery
    paths — durable-acceptor replay, learner catch-up, checkpoint
    restore. ``"geo"`` cuts and heals WAN links and spikes their jitter
    (plus light crash churn) for multi-region deployments. ``"overload"``
    aims crash/restart pairs at ring coordinators and the client
    population's gateway proposers, forcing timeout/retry/failover and
    admission-queue pressure. ``"reconfig"`` interleaves live elasticity
    operations — group remaps, ring splits and merges — with crash churn
    and partitions, aimed at the epoch-cut protocol's hand-off paths.
    """
    lo, hi = 0.05 * duration, 0.85 * duration
    if profile == "restart-heavy":
        return _restart_heavy_schedule(rng, topology, duration, lo, hi)
    if profile == "geo":
        return _geo_schedule(rng, topology, duration, lo, hi)
    if profile == "overload":
        return _overload_schedule(rng, topology, duration, lo, hi)
    if profile == "reconfig":
        return _reconfig_schedule(rng, topology, duration, lo, hi)
    if profile != "default":
        raise ValueError(f"unknown schedule profile {profile!r}")
    steps: list[ScheduleStep] = []

    # Crash episodes: each picks a role; most get a restart, some stay
    # down until the driver's epilogue revives everything.
    for _ in range(rng.randint(0, 3)):
        target = rng.choice(topology.crash_targets)
        t = rng.uniform(lo, hi)
        steps.append(ScheduleStep(t, "crash", target=target))
        if rng.random() < 0.8:
            dt = rng.uniform(0.05, 0.4) * duration
            steps.append(ScheduleStep(min(t + dt, hi), "restart", target=target))

    # Partitions: island of up to half the machines, cut then healed.
    for start, end in _phase_windows(rng, lo, hi, rng.randint(0, 2)):
        k = rng.randint(1, max(1, len(topology.nodes) // 2))
        island = tuple(sorted(rng.sample(list(topology.nodes), k)))
        steps.append(ScheduleStep(start, "partition", island=island))
        steps.append(ScheduleStep(end, "heal"))

    # Uniform-loss phases.
    for start, end in _phase_windows(rng, lo, hi, rng.randint(0, 2)):
        steps.append(ScheduleStep(start, "loss", p=round(rng.uniform(0.01, 0.25), 4)))
        steps.append(ScheduleStep(end, "loss_end"))

    # Slow-network phase: propagation delay multiplied for a window.
    for start, end in _phase_windows(rng, lo, hi, rng.randint(0, 1)):
        steps.append(ScheduleStep(start, "slow_net", factor=round(rng.uniform(2.0, 20.0), 2)))
        steps.append(ScheduleStep(end, "slow_net_end"))

    # Slow-disk phase: drain rates divided for a window (durable runs).
    for start, end in _phase_windows(rng, lo, hi, rng.randint(0, 1)):
        steps.append(ScheduleStep(start, "slow_disk", factor=round(rng.uniform(2.0, 8.0), 2)))
        steps.append(ScheduleStep(end, "slow_disk_end"))

    if not steps:
        # Every draw came up empty — force one crash/restart pair so a
        # "fault schedule" always injects at least one fault.
        target = rng.choice(topology.crash_targets)
        t = rng.uniform(lo, 0.5 * (lo + hi))
        steps.append(ScheduleStep(t, "crash", target=target))
        steps.append(ScheduleStep(min(t + 0.2 * duration, hi), "restart", target=target))

    return Schedule(steps)


def _restart_heavy_schedule(
    rng: random.Random, topology: Topology, duration: float, lo: float, hi: float
) -> Schedule:
    """The restart-heavy mix: crash/restart churn, little else.

    Every crashed role comes back while the run is still live (short
    downtimes), so recovery — not mere fail-stop tolerance — is what the
    oracles observe: restarted durable acceptors must answer from their
    replayed log, restarted learners must pull the missed suffix, and
    restarted replicas must reload a checkpoint and replay forward.
    A thin garnish of loss/partition windows keeps the recovery traffic
    itself under fire some of the time.
    """
    steps: list[ScheduleStep] = []
    for _ in range(rng.randint(2, 5)):
        target = rng.choice(topology.crash_targets)
        t = rng.uniform(lo, hi)
        steps.append(ScheduleStep(t, "crash", target=target))
        dt = rng.uniform(0.03, 0.15) * duration
        steps.append(ScheduleStep(min(t + dt, hi), "restart", target=target))

    for start, end in _phase_windows(rng, lo, hi, rng.randint(0, 1)):
        steps.append(ScheduleStep(start, "loss", p=round(rng.uniform(0.01, 0.15), 4)))
        steps.append(ScheduleStep(end, "loss_end"))

    for start, end in _phase_windows(rng, lo, hi, rng.randint(0, 1)):
        k = rng.randint(1, max(1, len(topology.nodes) // 2))
        island = tuple(sorted(rng.sample(list(topology.nodes), k)))
        steps.append(ScheduleStep(start, "partition", island=island))
        steps.append(ScheduleStep(end, "heal"))

    return Schedule(steps)


def _reconfig_schedule(
    rng: random.Random, topology: Topology, duration: float, lo: float, hi: float
) -> Schedule:
    """The elasticity mix: epoch cuts racing the faults they must survive.

    Several group remaps (including deliberate no-ops and back-to-back
    moves of the same group — the manager queues them) plus an occasional
    ring split, sometimes merged back, land inside the fault window. The
    split's fresh ring gets the next free id, known at generation time
    because ring ids are allocated ``max + 1``; a merge drawn without a
    preceding split is aimed between existing rings. On top: the same
    crash/restart churn and partition windows as the default mix, so
    drains, bounced-value forwarding and cut retries run under coordinator
    loss and network splits — the hand-off paths the epoch-boundary
    oracles watch.
    """
    steps: list[ScheduleStep] = []
    groups = topology.groups or (0,)
    rings = list(topology.rings or (0,))

    for _ in range(rng.randint(1, 3)):
        steps.append(ScheduleStep(
            rng.uniform(lo, hi), "remap",
            group=rng.choice(groups), ring=rng.choice(rings),
        ))

    if rng.random() < 0.6:
        t = rng.uniform(lo, 0.7 * hi)
        source = rng.choice(rings)
        steps.append(ScheduleStep(t, "ring_split", ring=source))
        new_ring = max(rings) + 1
        if rng.random() < 0.5:
            steps.append(ScheduleStep(
                rng.uniform(t, hi), "ring_merge",
                island=(str(new_ring), str(source)),
            ))
    elif len(rings) > 1:
        a, b = rng.sample(rings, 2)
        steps.append(ScheduleStep(
            rng.uniform(lo, hi), "ring_merge", island=(str(a), str(b)),
        ))

    for _ in range(rng.randint(1, 2)):
        target = rng.choice(topology.crash_targets)
        t = rng.uniform(lo, hi)
        steps.append(ScheduleStep(t, "crash", target=target))
        dt = rng.uniform(0.05, 0.25) * duration
        steps.append(ScheduleStep(min(t + dt, hi), "restart", target=target))

    for start, end in _phase_windows(rng, lo, hi, rng.randint(0, 1)):
        k = rng.randint(1, max(1, len(topology.nodes) // 2))
        island = tuple(sorted(rng.sample(list(topology.nodes), k)))
        steps.append(ScheduleStep(start, "partition", island=island))
        steps.append(ScheduleStep(end, "heal"))

    for start, end in _phase_windows(rng, lo, hi, rng.randint(0, 1)):
        steps.append(ScheduleStep(start, "loss", p=round(rng.uniform(0.01, 0.15), 4)))
        steps.append(ScheduleStep(end, "loss_end"))

    return Schedule(steps)


def _overload_schedule(
    rng: random.Random, topology: Topology, duration: float, lo: float, hi: float
) -> Schedule:
    """The overload mix: outages exactly where the client tier feels them.

    Crash/restart pairs draw from the ring coordinators and the
    population's gateway proposers (the fuzz build appends the gateways
    last, so they are the final two proposer targets). A crashed gateway
    black-holes submissions without consuming sequence numbers; a crashed
    coordinator stalls acks so in-flight capacity never frees — either
    way the population's timeout wheel, spare-gateway failover, and the
    gateways' bounded intake (delays, then sheds) all actually trigger.
    An occasional loss window keeps the retry traffic itself lossy.
    """
    steps: list[ScheduleStep] = []
    proposers = [t for t in topology.crash_targets if t.startswith("proposer:")]
    coordinators = [t for t in topology.crash_targets if t.startswith("coordinator:")]
    pool = coordinators + proposers[-2:]
    for _ in range(rng.randint(1, 3)):
        target = rng.choice(pool)
        t = rng.uniform(lo, hi)
        steps.append(ScheduleStep(t, "crash", target=target))
        dt = rng.uniform(0.05, 0.25) * duration
        steps.append(ScheduleStep(min(t + dt, hi), "restart", target=target))

    for start, end in _phase_windows(rng, lo, hi, rng.randint(0, 1)):
        steps.append(ScheduleStep(start, "loss", p=round(rng.uniform(0.01, 0.15), 4)))
        steps.append(ScheduleStep(end, "loss_end"))

    return Schedule(steps)


def _geo_schedule(
    rng: random.Random, topology: Topology, duration: float, lo: float, hi: float
) -> Schedule:
    """The WAN mix: link partitions and jitter spikes, plus light churn.

    Every fault here stresses the geo layer: a cut WAN link severs whole
    regions from each other (proposer retransmission and learner repair
    must span the heal), and a jitter spike multiplies every link's
    configured jitter — reordering pressure the per-link FIFO clamp must
    absorb. A little crash/restart churn keeps the node-level recovery
    paths honest in the same runs.
    """
    steps: list[ScheduleStep] = []
    pairs = topology.wan_pairs

    # WAN partition windows: the headline fault of this profile.
    for start, end in _phase_windows(rng, lo, hi, rng.randint(1, 2)):
        if not pairs:
            break
        pair = rng.choice(pairs)
        steps.append(ScheduleStep(start, "wan_partition", island=pair))
        steps.append(ScheduleStep(end, "wan_heal"))

    # Jitter spikes: amplify the configured jitter for a window.
    for start, end in _phase_windows(rng, lo, hi, rng.randint(0, 2)):
        steps.append(ScheduleStep(start, "wan_jitter", factor=round(rng.uniform(3.0, 12.0), 2)))
        steps.append(ScheduleStep(end, "wan_jitter_end"))

    # Light crash/restart churn on top.
    for _ in range(rng.randint(0, 2)):
        target = rng.choice(topology.crash_targets)
        t = rng.uniform(lo, hi)
        steps.append(ScheduleStep(t, "crash", target=target))
        if rng.random() < 0.8:
            dt = rng.uniform(0.05, 0.3) * duration
            steps.append(ScheduleStep(min(t + dt, hi), "restart", target=target))

    if not steps:
        # Degenerate draw: force one WAN cut (or a crash pair without
        # any WAN links) so the schedule always injects a fault.
        t = rng.uniform(lo, 0.5 * (lo + hi))
        if pairs:
            steps.append(ScheduleStep(t, "wan_partition", island=rng.choice(pairs)))
            steps.append(ScheduleStep(min(t + 0.2 * duration, hi), "wan_heal"))
        else:
            target = rng.choice(topology.crash_targets)
            steps.append(ScheduleStep(t, "crash", target=target))
            steps.append(ScheduleStep(min(t + 0.2 * duration, hi), "restart", target=target))

    return Schedule(steps)
