"""The simulation fuzzer: seeded cases, liveness-after-heal, shrinking.

One fuzz *case* is fully determined by an integer seed: the seed draws a
deployment configuration (:func:`draw_config`), a workload, and a fault
schedule (:mod:`repro.check.generator`), then runs them under the full
safety-oracle set (:mod:`repro.check.oracles`). After the scheduled fault
window the driver force-heals everything — partition, loss, link/disk
speed, every crashed role — and grants a bounded grace period in which
every message a proposer actually multicast must reach every learner
subscribed to its group (*liveness after heal*). Violations become
:class:`~repro.check.oracles.OracleViolation` results.

On failure the driver greedily shrinks the fault schedule — repeatedly
re-running with one step removed and keeping any removal that still
reproduces the same oracle violation — and writes the minimal schedule,
plus everything needed to replay it, as JSON. ``repro fuzz --replay
file.json`` re-runs exactly that case.

Cases are independent (each builds a fresh deployment from its seed), so
``--jobs N|auto`` fans them out across worker processes through
:mod:`repro.parallel`; verdicts come back in seed order and shrinking
plus failure-artifact writing always happen in the parent process.
``--cache`` additionally memoizes verdicts in ``results/.cache`` keyed
by the case spec and the code version.

CLI entry point: :func:`fuzz_main` (wired to ``python -m repro fuzz``).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..calibration import DISK_BANDWIDTH_BYTES_PER_S
from ..core.admission import AdmissionPolicy
from ..core.config import MultiRingConfig
from ..core.deployment import MultiRingPaxos
from ..sim.faults import NetworkPartition
from ..sim.loss import TunableLoss
from ..sim.topology import Topology as GeoTopology
from ..smr.kvstore import KeyValueStore
from ..smr.partitioning import RangePartitioner
from ..smr.replica import Replica
from ..smr.statemachine import Command
from ..workload.population import ClientPopulation
from ..workload.rates import ConstantRate
from .generator import Topology, generate_schedule, topology_of
from .oracles import AdmissionOracles, OracleViolation, SafetyOracles
from .schedule import Schedule, ScheduleRunner

__all__ = [
    "CaseConfig",
    "CaseResult",
    "draw_config",
    "run_case",
    "shrink",
    "failure_to_dict",
    "load_failure",
    "fuzz_main",
]

FORMAT_VERSION = 1


@dataclass(slots=True)
class CaseConfig:
    """Everything (besides the schedule) that defines one fuzz case.

    JSON-serializable so a failure file can rebuild the exact deployment.
    ``learners`` is one subscription list per learner; the workload is
    regenerated from ``workload_seed``, not stored.
    """

    n_groups: int = 2
    acceptors_per_ring: int = 2
    durable: bool = False
    lambda_rate: float = 1000.0
    delta: float = 5e-3
    sim_seed: int = 0
    workload_seed: int = 0
    learners: list[list[int]] = field(default_factory=lambda: [[0], [0, 1]])
    n_proposers: int = 1
    messages_per_proposer: int = 40
    value_size: int = 2048
    duration: float = 1.5
    profile: str = "default"
    replicas: int = 0
    checkpoint_interval: int = 0
    regions: int = 1
    wan_ms: float = 0.0
    wan_jitter_ms: float = 0.0
    population_sessions: int = 0
    population_rate: float = 0.0
    admission_inflight: int = 0
    admission_queue: int = 0

    def as_dict(self) -> dict:
        return {
            "n_groups": self.n_groups,
            "acceptors_per_ring": self.acceptors_per_ring,
            "durable": self.durable,
            "lambda_rate": self.lambda_rate,
            "delta": self.delta,
            "sim_seed": self.sim_seed,
            "workload_seed": self.workload_seed,
            "learners": [list(subs) for subs in self.learners],
            "n_proposers": self.n_proposers,
            "messages_per_proposer": self.messages_per_proposer,
            "value_size": self.value_size,
            "duration": self.duration,
            "profile": self.profile,
            "replicas": self.replicas,
            "checkpoint_interval": self.checkpoint_interval,
            "regions": self.regions,
            "wan_ms": self.wan_ms,
            "wan_jitter_ms": self.wan_jitter_ms,
            "population_sessions": self.population_sessions,
            "population_rate": self.population_rate,
            "admission_inflight": self.admission_inflight,
            "admission_queue": self.admission_queue,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CaseConfig":
        return cls(**data)


def draw_config(rng: random.Random, profile: str = "default") -> CaseConfig:
    """Draw a deployment + workload configuration from ``rng``.

    Small enough to simulate in well under a second, varied enough to
    cover single- and multi-ring merges, durable acceptors, and both
    light and skip-heavy rings. Every group gets at least one subscribed
    learner (otherwise liveness would be vacuous for it), and multi-group
    deployments always include at least one merging learner.

    The default profile's draw sequence is frozen — corpus seeds in the
    regression suite must keep reproducing the same cases. Profile
    ``"restart-heavy"`` draws the same base and then, from *additional*
    rng draws, biases toward durable acceptors and adds checkpointing
    replicas (two per partition, so the replica-order oracle has pairs
    to compare).
    """
    n_groups = rng.randint(1, 3)
    n_learners = rng.randint(2, 3)
    learners = [
        sorted(rng.sample(range(n_groups), rng.randint(1, n_groups)))
        for _ in range(n_learners)
    ]
    covered = {g for subs in learners for g in subs}
    for group in range(n_groups):
        if group not in covered:
            subs = learners[rng.randrange(n_learners)]
            subs.append(group)
            subs.sort()
    if n_groups > 1 and not any(len(subs) > 1 for subs in learners):
        subs = learners[rng.randrange(n_learners)]
        subs.append(next(g for g in range(n_groups) if g not in subs))
        subs.sort()
    config = CaseConfig(
        n_groups=n_groups,
        acceptors_per_ring=rng.choice([2, 2, 3]),
        durable=rng.random() < 0.2,
        lambda_rate=float(rng.choice([600, 1000, 2000])),
        delta=5e-3,
        sim_seed=rng.randrange(2**31),
        workload_seed=rng.randrange(2**31),
        learners=learners,
        n_proposers=rng.randint(1, 2),
        messages_per_proposer=rng.randint(30, 60),
        value_size=rng.choice([512, 2048, 8192]),
        duration=1.5,
    )
    if profile == "restart-heavy":
        config.profile = profile
        config.durable = rng.random() < 0.6
        if config.n_groups == 1:
            # Replicas need a partition group plus g_all; existing learner
            # subscriptions (all within group 0) stay valid.
            config.n_groups = 2
        n_partitions = config.n_groups - 1
        config.replicas = 2 * n_partitions
        config.checkpoint_interval = rng.choice([4, 8, 16])
    elif profile == "geo":
        # Additional draws on top of the frozen base: a multi-datacenter
        # fabric. Groups spread round-robin over regions, so learners and
        # rings land in different datacenters and the WAN links carry the
        # protocol traffic the geo schedule then cuts and jitters.
        config.profile = profile
        config.regions = rng.randint(2, 3)
        config.wan_ms = float(rng.choice([5, 15, 30]))
        config.wan_jitter_ms = round(rng.uniform(0.5, 3.0), 2)
    elif profile == "overload":
        # Additional draws on top of the frozen base: a flyweight client
        # population surging through admission-controlled gateways, one
        # responding replica per partition so requests complete end to
        # end, and intake bounds tight enough that the overload schedule
        # (gateway/coordinator outages) actually forces delays and sheds.
        config.profile = profile
        if config.n_groups == 1:
            # Populations need a partition group plus g_all; existing
            # learner subscriptions (all within group 0) stay valid.
            config.n_groups = 2
        config.replicas = config.n_groups - 1
        config.population_sessions = rng.choice([5_000, 50_000])
        config.population_rate = float(rng.choice([800, 1600]))
        config.admission_inflight = rng.choice([16, 32, 64])
        config.admission_queue = rng.choice([32, 128])
    elif profile == "reconfig":
        # Overrides on top of the frozen base: live elasticity. Remaps
        # need at least two groups (so a move actually changes the
        # mapping), and every learner subscribes to every group —
        # identical subscription sets are the scope within which the
        # deterministic merge defines a common order across an in-flight
        # remap (see docs/protocol.md). Volatile acceptors, no replicas:
        # checkpoint truncation during a mid-move coordinator change is a
        # documented open interaction, not what this profile hunts.
        config.profile = profile
        config.durable = False
        if config.n_groups == 1:
            config.n_groups = 2
        config.learners = [list(range(config.n_groups)) for _ in config.learners]
    elif profile != "default":
        raise ValueError(f"unknown fuzz profile {profile!r}")
    return config


@dataclass(slots=True)
class CaseResult:
    """Outcome of one fuzz case (the inputs travel with the verdict)."""

    seed: int
    config: CaseConfig
    schedule: Schedule
    ok: bool
    oracle: str | None = None
    message: str | None = None
    events_checked: int = 0


def _build(config: CaseConfig):
    """Deployment + fault hooks + oracles for one case."""
    loss = TunableLoss()
    partition = NetworkPartition(set(), underlying=loss)
    topology = None
    group_regions = None
    if config.regions > 1:
        topology = GeoTopology(
            [f"dc{i}" for i in range(config.regions)],
            wan_latency=config.wan_ms * 1e-3,
            wan_jitter=config.wan_jitter_ms * 1e-3,
        )
        group_regions = [f"dc{g % config.regions}" for g in range(config.n_groups)]
    mrp = MultiRingPaxos(
        MultiRingConfig(
            n_groups=config.n_groups,
            acceptors_per_ring=config.acceptors_per_ring,
            durable=config.durable,
            lambda_rate=config.lambda_rate,
            delta=config.delta,
            seed=config.sim_seed,
            topology=topology,
            group_regions=group_regions,
        )
    )
    mrp.network.loss = partition
    oracles = SafetyOracles().attach(mrp.sim)
    # Plain learners first: schedule targets index mrp.learners, and
    # replica-owned learners (appended by Replica below) must not shift
    # the indices the default-profile corpus schedules were drawn for.
    # Geo learners stay region-local (the add_learner default); proposers
    # spread round-robin over regions so submissions cross the WAN.
    learners = [mrp.add_learner(groups=list(subs)) for subs in config.learners]
    proposers = [
        mrp.add_proposer(region=f"dc{i % config.regions}" if topology is not None else None)
        for i in range(config.n_proposers)
    ]
    replicas = []
    if config.replicas:
        partitioner = RangePartitioner(max(1, config.n_groups - 1))
        for i in range(config.replicas):
            replicas.append(
                Replica(
                    mrp,
                    partitioner,
                    partition=i % partitioner.n_partitions,
                    state_machine=KeyValueStore(),
                    name=f"fz-replica{i}",
                    # Population cases need end-to-end acknowledgements;
                    # the base-workload commands carry no client and are
                    # unaffected by the respond flag either way.
                    respond=config.population_sessions > 0,
                    checkpoint_interval=config.checkpoint_interval,
                    disk_bandwidth=DISK_BANDWIDTH_BYTES_PER_S,
                )
            )
    population = admission_oracles = None
    if config.population_sessions:
        # The gateways join mrp.proposers *last*, which is what lets the
        # overload schedule aim crashes at them by index.
        population = ClientPopulation(
            mrp,
            RangePartitioner(max(1, config.n_groups - 1)),
            config.population_sessions,
            ConstantRate(config.population_rate),
            name="fz-pop",
            stop_at=0.8 * config.duration,
            admission=AdmissionPolicy(
                max_inflight=config.admission_inflight,
                max_queue=config.admission_queue,
            ),
        ).start()
        admission_oracles = AdmissionOracles().attach(mrp.sim)
    return (mrp, partition, loss, oracles, learners, proposers, replicas,
            population, admission_oracles)


def _install_workload(config: CaseConfig, mrp: MultiRingPaxos, proposers) -> None:
    """Schedule the client traffic: uniform submission times over the
    first 80% of the run, groups drawn per message. Reproduced exactly
    from ``workload_seed`` on replay.

    Replica cases carry :class:`~repro.smr.statemachine.Command` payloads
    instead of opaque strings — mostly single-key inserts to a partition
    group, with an occasional all-partition range query through g_all —
    so checkpointed state machines actually accumulate state to restore.
    """
    wrng = random.Random(config.workload_seed)
    window = 0.8 * config.duration
    partitioner = RangePartitioner(max(1, config.n_groups - 1)) if config.replicas else None
    for pi, proposer in enumerate(proposers):
        for i in range(config.messages_per_proposer):
            t = 0.02 + wrng.random() * window
            if partitioner is None:
                group = wrng.randrange(config.n_groups)
                payload: object = f"p{pi}-m{i}"
            elif wrng.random() < 0.15:
                group = partitioner.all_group
                payload = Command(op="query", args=(0, partitioner.key_space - 1),
                                  req_id=i, padding=config.value_size)
            else:
                key = wrng.randrange(partitioner.key_space)
                group = partitioner.group_of_key(key)
                payload = Command(op="insert", args=(key,),
                                  req_id=i, padding=config.value_size)
            mrp.sim.at(t, proposer.multicast, group, payload, config.value_size)


def _undelivered(
    config: CaseConfig, oracles: SafetyOracles, learners, replicas=()
) -> dict[str, list]:
    """Messages each learner still owes: proposed to a subscribed group
    but not yet delivered. Replica-owned learners owe the messages of
    their subscription ({g_i, g_all}) like any other learner. Empty
    dict == liveness satisfied."""
    proposed = oracles.proposed_messages
    owed = [(learner.name, subs) for subs, learner in zip(config.learners, learners)]
    owed += [
        (replica.learner.name, replica.partitioner.groups_for_replica(replica.partition))
        for replica in replicas
    ]
    missing: dict[str, list] = {}
    for name, subs in owed:
        want = [m for m in proposed if m[2] in subs]
        have = oracles.delivered_by(name)
        miss = [m for m in want if m not in have]
        if miss:
            missing[name] = miss
    return missing


def _restart_laggards(
    runner: ScheduleRunner, frontiers: dict[int, int], accept_base: dict[str, float]
) -> dict[str, str]:
    """Restarted roles whose recovery has not converged yet.

    A restarted learner (or checkpoint-restored replica) converges when
    every subscribed ring learner has caught up to the ring's decided
    frontier as of the forced heal. A restarted acceptor converges when
    it accepts again (its ``accepts`` counter moves past the heal-time
    baseline — λ-skips guarantee ring traffic). Coordinators and
    proposers keep volatile state across restarts and need no recovery,
    and the plain liveness check already covers them.
    """
    lag: dict[str, str] = {}
    for target in sorted(runner.restarted):
        role = runner.resolve(target)
        if role is None or role.crashed:
            continue
        kind = target.partition(":")[0]
        if kind in ("learner", "replica"):
            learner = role.learner if kind == "replica" else role
            for ring_id, frontier in sorted(frontiers.items()):
                ring_learner = learner.ring_learners.get(ring_id)
                if ring_learner is not None and ring_learner.next_instance < frontier:
                    lag[target] = (
                        f"ring {ring_id} position {ring_learner.next_instance} "
                        f"below the heal-time decided frontier {frontier}"
                    )
                    break
        elif kind == "acceptor" and target in accept_base:
            # A ring retired by a completed merge stops deciding (its skip
            # manager is down), so its restarted acceptors legitimately
            # never accept again — there is nothing left to converge to.
            ring_id = int(target.split(":")[1])
            handle = runner.mrp.rings.get(ring_id)
            if handle is not None and handle.retired:
                continue
            if role.accepts.value <= accept_base[target]:
                lag[target] = (
                    f"no accepts since restart (stuck at {role.accepts.value:g})"
                )
    return lag


def run_case(
    seed: int,
    config: CaseConfig | None = None,
    schedule: Schedule | None = None,
    grace: float = 6.0,
    duration: float | None = None,
    profile: str = "default",
) -> CaseResult:
    """Run one fuzz case to a verdict; never raises on a violation.

    With only ``seed``, the configuration and schedule are drawn from it
    (``profile`` selects the config/schedule mix, and travels inside the
    config so replays reproduce it). Passing ``config``/``schedule``
    explicitly pins them (replay and shrinking). ``grace`` bounds the
    liveness wait after the forced heal; the run stops early once every
    owed message is delivered and every restarted role has recovered.
    """
    rng = random.Random(seed)
    if config is None:
        config = draw_config(rng, profile=profile)
    if duration is not None:
        config.duration = duration
    (mrp, partition, loss, oracles, learners, proposers, replicas,
     population, admission_oracles) = _build(config)

    def events_checked() -> int:
        extra = admission_oracles.events_checked if admission_oracles else 0
        return oracles.events_checked + extra

    if schedule is None:
        topology = topology_of(mrp)
        if replicas:
            topology = Topology(
                crash_targets=topology.crash_targets
                + tuple(f"replica:{i}" for i in range(len(replicas))),
                nodes=topology.nodes,
                wan_pairs=topology.wan_pairs,
                groups=topology.groups,
                rings=topology.rings,
            )
        schedule = generate_schedule(rng, topology, config.duration, config.profile)
    extra_roles = {f"replica:{i}": replica for i, replica in enumerate(replicas)}
    runner = ScheduleRunner(mrp, partition, loss, extra_roles=extra_roles).install(schedule)
    _install_workload(config, mrp, proposers)
    try:
        mrp.run(until=config.duration)
        # Epilogue, outside the shrinkable schedule: whatever the faults
        # did, the network is made whole before liveness is judged.
        runner.heal_everything()
        # Liveness-after-restart baselines: every ring's decided frontier
        # and every restarted acceptor's accept count, as of the heal.
        frontiers = oracles.ring_frontiers()
        accept_base = {
            target: role.accepts.value
            for target in runner.restarted
            if target.startswith("acceptor:")
            and (role := runner.resolve(target)) is not None
        }
        deadline = config.duration + grace
        now = mrp.sim.now
        while True:
            now = min(now + 0.5, deadline)
            mrp.run(until=now)
            missing = _undelivered(config, oracles, learners, replicas)
            laggards = _restart_laggards(runner, frontiers, accept_base)
            if not missing and not laggards:
                break
            if now >= deadline:
                if laggards:
                    target, why = next(iter(sorted(laggards.items())))
                    raise OracleViolation(
                        "liveness-after-restart",
                        f"{len(laggards)} restarted role(s) not recovered "
                        f"{grace:g}s after heal (e.g. {target}: {why})",
                        time=mrp.sim.now,
                        source=target,
                        context={"laggards": dict(sorted(laggards.items()))},
                    )
                learner, owed = next(iter(sorted(missing.items())))
                raise OracleViolation(
                    "liveness",
                    f"{sum(len(v) for v in missing.values())} proposed messages "
                    f"undelivered {grace:g}s after heal "
                    f"(e.g. {learner} missing {owed[:3]})",
                    time=mrp.sim.now,
                    source=learner,
                    context={"missing": {k: v[:10] for k, v in missing.items()}},
                )
        oracles.check_final()
    except OracleViolation as violation:
        return CaseResult(
            seed=seed, config=config, schedule=schedule, ok=False,
            oracle=violation.oracle, message=str(violation),
            events_checked=events_checked(),
        )
    return CaseResult(
        seed=seed, config=config, schedule=schedule, ok=True,
        events_checked=events_checked(),
    )


def shrink(result: CaseResult, budget: int = 150, grace: float = 6.0) -> tuple[Schedule, int]:
    """Greedily minimize a failing schedule; returns (schedule, reruns).

    Repeatedly re-runs the case with one step removed (scanning back to
    front) and keeps any removal that still fails with the *same* oracle.
    Loops until a full pass removes nothing or the rerun budget is spent.
    The result is 1-minimal w.r.t. single-step removal, and every kept
    intermediate is itself a replayable failing schedule.
    """
    if result.ok:
        raise ValueError("can only shrink a failing case")
    current = result.schedule
    reruns = 0
    progress = True
    while progress and reruns < budget:
        progress = False
        i = len(current) - 1
        while i >= 0 and reruns < budget:
            candidate = current.without(i)
            reruns += 1
            res = run_case(result.seed, config=result.config, schedule=candidate, grace=grace)
            if not res.ok and res.oracle == result.oracle:
                current = candidate
                progress = True
            i -= 1
    return current, reruns


# ----------------------------------------------------------------------
# Failure files
# ----------------------------------------------------------------------
def failure_to_dict(result: CaseResult, shrunk: Schedule | None = None) -> dict:
    """The JSON payload of one minimized failure."""
    final = shrunk if shrunk is not None else result.schedule
    return {
        "version": FORMAT_VERSION,
        "seed": result.seed,
        "oracle": result.oracle,
        "message": result.message,
        "original_steps": len(result.schedule),
        "shrunk_steps": len(final),
        "config": result.config.as_dict(),
        "schedule": final.as_dict(),
    }


def load_failure(path: str | Path) -> tuple[int, CaseConfig, Schedule]:
    """Read a failure file back into (seed, config, schedule)."""
    data = json.loads(Path(path).read_text())
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported failure-file version {data.get('version')!r}")
    return (
        data["seed"],
        CaseConfig.from_dict(data["config"]),
        Schedule.from_dict(data["schedule"]),
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def fuzz_main(argv: list[str] | None = None) -> int:
    """``python -m repro fuzz`` — run seeded fuzz cases or replay one."""
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Deterministic simulation fuzzing with safety oracles.",
    )
    parser.add_argument("--runs", type=int, default=25,
                        help="number of seeded cases (default 25)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; case i runs with seed+i (default 0)")
    parser.add_argument("--duration", type=float, default=None,
                        help="override the per-case fault/workload window (s)")
    parser.add_argument("--profile", default="default",
                        choices=("default", "restart-heavy", "geo", "overload",
                                 "reconfig"),
                        help="fault/config mix: 'default' (balanced), "
                             "'restart-heavy' (crash/restart churn with "
                             "checkpointing replicas), 'geo' (multi-"
                             "datacenter with WAN partitions and jitter), "
                             "'overload' (client-population surge into "
                             "admission-controlled gateways under outages), "
                             "or 'reconfig' (live group remaps and ring "
                             "splits/merges racing crashes and partitions)")
    parser.add_argument("--grace", type=float, default=6.0,
                        help="liveness grace after forced heal (simulated s)")
    parser.add_argument("--out", default="fuzz-failures",
                        help="directory for minimized failure JSON files")
    parser.add_argument("--replay", metavar="FILE", default=None,
                        help="replay one failure file instead of fuzzing")
    parser.add_argument("--shrink-budget", type=int, default=150,
                        help="max reruns spent minimizing each failure")
    parser.add_argument("--no-shrink", action="store_true",
                        help="save failures without minimizing")
    parser.add_argument("--time-budget", type=float, default=None,
                        help="stop starting new cases after this many wall seconds")
    parser.add_argument("--jobs", default="1",
                        help="worker processes for the seed sweep: a number or "
                             "'auto' (CPU count); 1 runs in-process (default)")
    parser.add_argument("--cache", action="store_true",
                        help="memoize case verdicts in results/.cache "
                             "(content-addressed by case spec + code version)")
    args = parser.parse_args(argv)

    from ..parallel import ResultCache, Spec, parse_jobs, run_specs

    try:
        jobs = parse_jobs(args.jobs)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.replay is not None:
        seed, config, schedule = load_failure(args.replay)
        result = run_case(seed, config=config, schedule=schedule,
                          grace=args.grace, duration=args.duration)
        if result.ok:
            print(f"replay {args.replay}: schedule no longer fails")
            return 0
        print(f"replay {args.replay}: {result.message}")
        for line in schedule.describe().splitlines():
            print(f"  {line}")
        return 1

    # The seed sweep: each case is one picklable spec; the executor runs
    # them in-process (--jobs 1), or fans them out across workers. The
    # spec addresses run_case through the module attribute, so verdicts
    # are identical either way.
    specs = [
        Spec(
            fn="repro.check.driver:run_case",
            kwargs={"seed": args.seed + i, "grace": args.grace,
                    "duration": args.duration, "profile": args.profile},
            label=f"fuzz:seed{args.seed + i}",
        )
        for i in range(args.runs)
    ]

    def print_verdict(index: int, status: str, result) -> None:
        if status == "error":
            print(f"seed {args.seed + index}: ERROR {result}")
            return
        cached = " (cached)" if status == "cached" else ""
        if result.ok:
            print(f"seed {result.seed}: ok ({len(result.schedule)} fault steps, "
                  f"{result.events_checked} events checked){cached}")
        else:
            print(f"seed {result.seed}: FAIL {result.message}{cached}")

    # Workers finish out of order; verdict lines are buffered and flushed
    # in seed order so the log reads identically for any --jobs. Tasks are
    # dispatched in spec order (a time budget only truncates the tail), so
    # completed indices always form a prefix and the buffer fully drains.
    buffered: dict[int, tuple[str, object]] = {}
    flushed = [0]

    def report(index: int, status: str, result) -> None:
        buffered[index] = (status, result)
        while flushed[0] in buffered:
            print_verdict(flushed[0], *buffered.pop(flushed[0]))
            flushed[0] += 1

    results = run_specs(
        specs,
        jobs=jobs,
        cache=ResultCache() if args.cache else None,
        time_budget=args.time_budget,
        on_result=report,
    )
    completed = sum(1 for r in results if r is not None)
    if completed < len(specs) and args.time_budget is not None:
        print(f"time budget ({args.time_budget:g}s) reached after {completed} runs")

    # Failure artifacts and shrinking stay in the parent: shrink re-runs
    # cases serially right here, and only the parent touches --out.
    failures = 0
    for result in results:
        if result is None or result.ok:
            continue
        failures += 1
        shrunk = result.schedule
        if not args.no_shrink:
            shrunk, reruns = shrink(result, budget=args.shrink_budget, grace=args.grace)
            print(f"  seed {result.seed}: shrunk {len(result.schedule)} -> "
                  f"{len(shrunk)} steps ({reruns} reruns)")
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        out_path = out_dir / f"seed{result.seed}.json"
        out_path.write_text(json.dumps(failure_to_dict(result, shrunk), indent=2) + "\n")
        print(f"  wrote {out_path}")
        for line in shrunk.describe().splitlines():
            print(f"    {line}")
    print(f"fuzz: {completed} runs, {failures} failures")
    return 1 if failures else 0
