"""The simulation fuzzer: seeded cases, liveness-after-heal, shrinking.

One fuzz *case* is fully determined by an integer seed: the seed draws a
deployment configuration (:func:`draw_config`), a workload, and a fault
schedule (:mod:`repro.check.generator`), then runs them under the full
safety-oracle set (:mod:`repro.check.oracles`). After the scheduled fault
window the driver force-heals everything — partition, loss, link/disk
speed, every crashed role — and grants a bounded grace period in which
every message a proposer actually multicast must reach every learner
subscribed to its group (*liveness after heal*). Violations become
:class:`~repro.check.oracles.OracleViolation` results.

On failure the driver greedily shrinks the fault schedule — repeatedly
re-running with one step removed and keeping any removal that still
reproduces the same oracle violation — and writes the minimal schedule,
plus everything needed to replay it, as JSON. ``repro fuzz --replay
file.json`` re-runs exactly that case.

Cases are independent (each builds a fresh deployment from its seed), so
``--jobs N|auto`` fans them out across worker processes through
:mod:`repro.parallel`; verdicts come back in seed order and shrinking
plus failure-artifact writing always happen in the parent process.
``--cache`` additionally memoizes verdicts in ``results/.cache`` keyed
by the case spec and the code version.

CLI entry point: :func:`fuzz_main` (wired to ``python -m repro fuzz``).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..core.config import MultiRingConfig
from ..core.deployment import MultiRingPaxos
from ..sim.faults import NetworkPartition
from ..sim.loss import TunableLoss
from .generator import generate_schedule, topology_of
from .oracles import OracleViolation, SafetyOracles
from .schedule import Schedule, ScheduleRunner

__all__ = [
    "CaseConfig",
    "CaseResult",
    "draw_config",
    "run_case",
    "shrink",
    "failure_to_dict",
    "load_failure",
    "fuzz_main",
]

FORMAT_VERSION = 1


@dataclass(slots=True)
class CaseConfig:
    """Everything (besides the schedule) that defines one fuzz case.

    JSON-serializable so a failure file can rebuild the exact deployment.
    ``learners`` is one subscription list per learner; the workload is
    regenerated from ``workload_seed``, not stored.
    """

    n_groups: int = 2
    acceptors_per_ring: int = 2
    durable: bool = False
    lambda_rate: float = 1000.0
    delta: float = 5e-3
    sim_seed: int = 0
    workload_seed: int = 0
    learners: list[list[int]] = field(default_factory=lambda: [[0], [0, 1]])
    n_proposers: int = 1
    messages_per_proposer: int = 40
    value_size: int = 2048
    duration: float = 1.5

    def as_dict(self) -> dict:
        return {
            "n_groups": self.n_groups,
            "acceptors_per_ring": self.acceptors_per_ring,
            "durable": self.durable,
            "lambda_rate": self.lambda_rate,
            "delta": self.delta,
            "sim_seed": self.sim_seed,
            "workload_seed": self.workload_seed,
            "learners": [list(subs) for subs in self.learners],
            "n_proposers": self.n_proposers,
            "messages_per_proposer": self.messages_per_proposer,
            "value_size": self.value_size,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CaseConfig":
        return cls(**data)


def draw_config(rng: random.Random) -> CaseConfig:
    """Draw a deployment + workload configuration from ``rng``.

    Small enough to simulate in well under a second, varied enough to
    cover single- and multi-ring merges, durable acceptors, and both
    light and skip-heavy rings. Every group gets at least one subscribed
    learner (otherwise liveness would be vacuous for it), and multi-group
    deployments always include at least one merging learner.
    """
    n_groups = rng.randint(1, 3)
    n_learners = rng.randint(2, 3)
    learners = [
        sorted(rng.sample(range(n_groups), rng.randint(1, n_groups)))
        for _ in range(n_learners)
    ]
    covered = {g for subs in learners for g in subs}
    for group in range(n_groups):
        if group not in covered:
            subs = learners[rng.randrange(n_learners)]
            subs.append(group)
            subs.sort()
    if n_groups > 1 and not any(len(subs) > 1 for subs in learners):
        subs = learners[rng.randrange(n_learners)]
        subs.append(next(g for g in range(n_groups) if g not in subs))
        subs.sort()
    return CaseConfig(
        n_groups=n_groups,
        acceptors_per_ring=rng.choice([2, 2, 3]),
        durable=rng.random() < 0.2,
        lambda_rate=float(rng.choice([600, 1000, 2000])),
        delta=5e-3,
        sim_seed=rng.randrange(2**31),
        workload_seed=rng.randrange(2**31),
        learners=learners,
        n_proposers=rng.randint(1, 2),
        messages_per_proposer=rng.randint(30, 60),
        value_size=rng.choice([512, 2048, 8192]),
        duration=1.5,
    )


@dataclass(slots=True)
class CaseResult:
    """Outcome of one fuzz case (the inputs travel with the verdict)."""

    seed: int
    config: CaseConfig
    schedule: Schedule
    ok: bool
    oracle: str | None = None
    message: str | None = None
    events_checked: int = 0


def _build(config: CaseConfig):
    """Deployment + fault hooks + oracles for one case."""
    loss = TunableLoss()
    partition = NetworkPartition(set(), underlying=loss)
    mrp = MultiRingPaxos(
        MultiRingConfig(
            n_groups=config.n_groups,
            acceptors_per_ring=config.acceptors_per_ring,
            durable=config.durable,
            lambda_rate=config.lambda_rate,
            delta=config.delta,
            seed=config.sim_seed,
        )
    )
    mrp.network.loss = partition
    oracles = SafetyOracles().attach(mrp.sim)
    learners = [mrp.add_learner(groups=list(subs)) for subs in config.learners]
    proposers = [mrp.add_proposer() for _ in range(config.n_proposers)]
    return mrp, partition, loss, oracles, learners, proposers


def _install_workload(config: CaseConfig, mrp: MultiRingPaxos, proposers) -> None:
    """Schedule the client traffic: uniform submission times over the
    first 80% of the run, groups drawn per message. Reproduced exactly
    from ``workload_seed`` on replay."""
    wrng = random.Random(config.workload_seed)
    window = 0.8 * config.duration
    for pi, proposer in enumerate(proposers):
        for i in range(config.messages_per_proposer):
            t = 0.02 + wrng.random() * window
            group = wrng.randrange(config.n_groups)
            mrp.sim.at(t, proposer.multicast, group, f"p{pi}-m{i}", config.value_size)


def _undelivered(config: CaseConfig, oracles: SafetyOracles, learners) -> dict[str, list]:
    """Messages each learner still owes: proposed to a subscribed group
    but not yet delivered. Empty dict == liveness satisfied."""
    proposed = oracles.proposed_messages
    missing: dict[str, list] = {}
    for subs, learner in zip(config.learners, learners):
        want = [m for m in proposed if m[2] in subs]
        have = oracles.delivered_by(learner.name)
        miss = [m for m in want if m not in have]
        if miss:
            missing[learner.name] = miss
    return missing


def run_case(
    seed: int,
    config: CaseConfig | None = None,
    schedule: Schedule | None = None,
    grace: float = 6.0,
    duration: float | None = None,
) -> CaseResult:
    """Run one fuzz case to a verdict; never raises on a violation.

    With only ``seed``, the configuration and schedule are drawn from it.
    Passing ``config``/``schedule`` explicitly pins them (replay and
    shrinking). ``grace`` bounds the liveness wait after the forced heal;
    the run stops early once every owed message is delivered.
    """
    rng = random.Random(seed)
    if config is None:
        config = draw_config(rng)
    if duration is not None:
        config.duration = duration
    mrp, partition, loss, oracles, learners, proposers = _build(config)
    if schedule is None:
        schedule = generate_schedule(rng, topology_of(mrp), config.duration)
    runner = ScheduleRunner(mrp, partition, loss).install(schedule)
    _install_workload(config, mrp, proposers)
    try:
        mrp.run(until=config.duration)
        # Epilogue, outside the shrinkable schedule: whatever the faults
        # did, the network is made whole before liveness is judged.
        runner.heal_everything()
        deadline = config.duration + grace
        now = mrp.sim.now
        while True:
            now = min(now + 0.5, deadline)
            mrp.run(until=now)
            missing = _undelivered(config, oracles, learners)
            if not missing:
                break
            if now >= deadline:
                learner, owed = next(iter(sorted(missing.items())))
                raise OracleViolation(
                    "liveness",
                    f"{sum(len(v) for v in missing.values())} proposed messages "
                    f"undelivered {grace:g}s after heal "
                    f"(e.g. {learner} missing {owed[:3]})",
                    time=mrp.sim.now,
                    source=learner,
                    context={"missing": {k: v[:10] for k, v in missing.items()}},
                )
        oracles.check_final()
    except OracleViolation as violation:
        return CaseResult(
            seed=seed, config=config, schedule=schedule, ok=False,
            oracle=violation.oracle, message=str(violation),
            events_checked=oracles.events_checked,
        )
    return CaseResult(
        seed=seed, config=config, schedule=schedule, ok=True,
        events_checked=oracles.events_checked,
    )


def shrink(result: CaseResult, budget: int = 150, grace: float = 6.0) -> tuple[Schedule, int]:
    """Greedily minimize a failing schedule; returns (schedule, reruns).

    Repeatedly re-runs the case with one step removed (scanning back to
    front) and keeps any removal that still fails with the *same* oracle.
    Loops until a full pass removes nothing or the rerun budget is spent.
    The result is 1-minimal w.r.t. single-step removal, and every kept
    intermediate is itself a replayable failing schedule.
    """
    if result.ok:
        raise ValueError("can only shrink a failing case")
    current = result.schedule
    reruns = 0
    progress = True
    while progress and reruns < budget:
        progress = False
        i = len(current) - 1
        while i >= 0 and reruns < budget:
            candidate = current.without(i)
            reruns += 1
            res = run_case(result.seed, config=result.config, schedule=candidate, grace=grace)
            if not res.ok and res.oracle == result.oracle:
                current = candidate
                progress = True
            i -= 1
    return current, reruns


# ----------------------------------------------------------------------
# Failure files
# ----------------------------------------------------------------------
def failure_to_dict(result: CaseResult, shrunk: Schedule | None = None) -> dict:
    """The JSON payload of one minimized failure."""
    final = shrunk if shrunk is not None else result.schedule
    return {
        "version": FORMAT_VERSION,
        "seed": result.seed,
        "oracle": result.oracle,
        "message": result.message,
        "original_steps": len(result.schedule),
        "shrunk_steps": len(final),
        "config": result.config.as_dict(),
        "schedule": final.as_dict(),
    }


def load_failure(path: str | Path) -> tuple[int, CaseConfig, Schedule]:
    """Read a failure file back into (seed, config, schedule)."""
    data = json.loads(Path(path).read_text())
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported failure-file version {data.get('version')!r}")
    return (
        data["seed"],
        CaseConfig.from_dict(data["config"]),
        Schedule.from_dict(data["schedule"]),
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def fuzz_main(argv: list[str] | None = None) -> int:
    """``python -m repro fuzz`` — run seeded fuzz cases or replay one."""
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Deterministic simulation fuzzing with safety oracles.",
    )
    parser.add_argument("--runs", type=int, default=25,
                        help="number of seeded cases (default 25)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; case i runs with seed+i (default 0)")
    parser.add_argument("--duration", type=float, default=None,
                        help="override the per-case fault/workload window (s)")
    parser.add_argument("--grace", type=float, default=6.0,
                        help="liveness grace after forced heal (simulated s)")
    parser.add_argument("--out", default="fuzz-failures",
                        help="directory for minimized failure JSON files")
    parser.add_argument("--replay", metavar="FILE", default=None,
                        help="replay one failure file instead of fuzzing")
    parser.add_argument("--shrink-budget", type=int, default=150,
                        help="max reruns spent minimizing each failure")
    parser.add_argument("--no-shrink", action="store_true",
                        help="save failures without minimizing")
    parser.add_argument("--time-budget", type=float, default=None,
                        help="stop starting new cases after this many wall seconds")
    parser.add_argument("--jobs", default="1",
                        help="worker processes for the seed sweep: a number or "
                             "'auto' (CPU count); 1 runs in-process (default)")
    parser.add_argument("--cache", action="store_true",
                        help="memoize case verdicts in results/.cache "
                             "(content-addressed by case spec + code version)")
    args = parser.parse_args(argv)

    from ..parallel import ResultCache, Spec, parse_jobs, run_specs

    try:
        jobs = parse_jobs(args.jobs)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.replay is not None:
        seed, config, schedule = load_failure(args.replay)
        result = run_case(seed, config=config, schedule=schedule,
                          grace=args.grace, duration=args.duration)
        if result.ok:
            print(f"replay {args.replay}: schedule no longer fails")
            return 0
        print(f"replay {args.replay}: {result.message}")
        for line in schedule.describe().splitlines():
            print(f"  {line}")
        return 1

    # The seed sweep: each case is one picklable spec; the executor runs
    # them in-process (--jobs 1), or fans them out across workers. The
    # spec addresses run_case through the module attribute, so verdicts
    # are identical either way.
    specs = [
        Spec(
            fn="repro.check.driver:run_case",
            kwargs={"seed": args.seed + i, "grace": args.grace, "duration": args.duration},
            label=f"fuzz:seed{args.seed + i}",
        )
        for i in range(args.runs)
    ]

    def print_verdict(index: int, status: str, result) -> None:
        if status == "error":
            print(f"seed {args.seed + index}: ERROR {result}")
            return
        cached = " (cached)" if status == "cached" else ""
        if result.ok:
            print(f"seed {result.seed}: ok ({len(result.schedule)} fault steps, "
                  f"{result.events_checked} events checked){cached}")
        else:
            print(f"seed {result.seed}: FAIL {result.message}{cached}")

    # Workers finish out of order; verdict lines are buffered and flushed
    # in seed order so the log reads identically for any --jobs. Tasks are
    # dispatched in spec order (a time budget only truncates the tail), so
    # completed indices always form a prefix and the buffer fully drains.
    buffered: dict[int, tuple[str, object]] = {}
    flushed = [0]

    def report(index: int, status: str, result) -> None:
        buffered[index] = (status, result)
        while flushed[0] in buffered:
            print_verdict(flushed[0], *buffered.pop(flushed[0]))
            flushed[0] += 1

    results = run_specs(
        specs,
        jobs=jobs,
        cache=ResultCache() if args.cache else None,
        time_budget=args.time_budget,
        on_result=report,
    )
    completed = sum(1 for r in results if r is not None)
    if completed < len(specs) and args.time_budget is not None:
        print(f"time budget ({args.time_budget:g}s) reached after {completed} runs")

    # Failure artifacts and shrinking stay in the parent: shrink re-runs
    # cases serially right here, and only the parent touches --out.
    failures = 0
    for result in results:
        if result is None or result.ok:
            continue
        failures += 1
        shrunk = result.schedule
        if not args.no_shrink:
            shrunk, reruns = shrink(result, budget=args.shrink_budget, grace=args.grace)
            print(f"  seed {result.seed}: shrunk {len(result.schedule)} -> "
                  f"{len(shrunk)} steps ({reruns} reruns)")
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        out_path = out_dir / f"seed{result.seed}.json"
        out_path.write_text(json.dumps(failure_to_dict(result, shrunk), indent=2) + "\n")
        print(f"  wrote {out_path}")
        for line in shrunk.describe().splitlines():
            print(f"    {line}")
    print(f"fuzz: {completed} runs, {failures} failures")
    return 1 if failures else 0
