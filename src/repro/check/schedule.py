"""Replayable fault schedules: a JSON-serializable fault timeline.

A :class:`Schedule` is a flat, time-ordered list of :class:`ScheduleStep`
records — crash/restart of a named role, partition/heal of a node island,
loss phases, slow-network / slow-disk phases, and elasticity operations
(group remaps, ring splits/merges) handed to the deployment's
reconfiguration manager. It is pure data: the
whole schedule round-trips through JSON, which is what makes a failing
fuzz run a *file* (``repro fuzz --replay failure.json``) rather than a
stack trace.

:class:`ScheduleRunner` resolves the step targets against a live
:class:`~repro.core.deployment.MultiRingPaxos` deployment and installs
them on the simulator timeline through a
:class:`~repro.sim.faults.FaultSchedule`. Targets are *role names*
(``coordinator:0``, ``acceptor:1:0``, ``learner:2``, ``proposer:0``), not
object references, so the same schedule file applies to a freshly rebuilt
deployment — resolution happens when the step fires.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from ..sim.faults import FaultSchedule, NetworkPartition
from ..sim.loss import TunableLoss

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.deployment import MultiRingPaxos

__all__ = ["ScheduleStep", "Schedule", "ScheduleRunner", "ACTIONS"]

# Paired phase actions: the second member ends what the first started.
# The elasticity actions (remap, ring_split, ring_merge) are unpaired:
# each hands one operation to the deployment's reconfiguration manager,
# which drives it to completion (or queues it) on its own.
ACTIONS = (
    "crash", "restart",
    "partition", "heal",
    "loss", "loss_end",
    "slow_net", "slow_net_end",
    "slow_disk", "slow_disk_end",
    "wan_partition", "wan_heal",
    "wan_jitter", "wan_jitter_end",
    "remap", "ring_split", "ring_merge",
)


@dataclass(frozen=True, slots=True)
class ScheduleStep:
    """One fault event on the timeline.

    Fields are action-dependent: ``target`` for crash/restart, ``island``
    for partition (node names), wan_partition (the two region names) and
    ring_merge (the two ring ids, source then destination, as strings),
    ``p`` for loss phases, ``factor`` for slow and wan_jitter phases,
    ``group``/``ring`` for remap (the group and its destination ring) and
    ``ring`` alone for ring_split.
    """

    time: float
    action: str
    target: str | None = None
    island: tuple[str, ...] | None = None
    p: float | None = None
    factor: float | None = None
    group: int | None = None
    ring: int | None = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ConfigurationError(f"unknown schedule action {self.action!r}")
        if self.time < 0:
            raise ConfigurationError("schedule steps cannot be scheduled in the past")

    def as_dict(self) -> dict:
        out: dict = {"t": self.time, "action": self.action}
        if self.target is not None:
            out["target"] = self.target
        if self.island is not None:
            out["island"] = list(self.island)
        if self.p is not None:
            out["p"] = self.p
        if self.factor is not None:
            out["factor"] = self.factor
        if self.group is not None:
            out["group"] = self.group
        if self.ring is not None:
            out["ring"] = self.ring
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleStep":
        island = data.get("island")
        return cls(
            time=float(data["t"]),
            action=data["action"],
            target=data.get("target"),
            island=tuple(island) if island is not None else None,
            p=data.get("p"),
            factor=data.get("factor"),
            group=data.get("group"),
            ring=data.get("ring"),
        )

    def describe(self) -> str:
        detail = self.target or ""
        if self.island is not None:
            detail = "{" + ",".join(self.island) + "}"
        if self.p is not None:
            detail = f"p={self.p:g}"
        if self.factor is not None:
            detail = f"x{self.factor:g}"
        if self.group is not None or self.ring is not None:
            parts = []
            if self.group is not None:
                parts.append(f"group={self.group}")
            if self.ring is not None:
                parts.append(f"ring={self.ring}")
            detail = " ".join(parts)
        return f"t={self.time:g}s {self.action} {detail}".rstrip()


@dataclass(slots=True)
class Schedule:
    """A replayable fault schedule (sorted by step time on construction)."""

    steps: list[ScheduleStep] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Stable sort: steps at identical times keep their listed order,
        # matching the event queue's scheduling-order tie-break.
        self.steps = sorted(self.steps, key=lambda s: s.time)

    def __len__(self) -> int:
        return len(self.steps)

    def without(self, index: int) -> "Schedule":
        """A copy with step ``index`` removed (the shrinker's one move)."""
        return Schedule(self.steps[:index] + self.steps[index + 1:])

    def describe(self) -> str:
        """Readable one-line-per-step summary, time-ordered."""
        return "\n".join(step.describe() for step in self.steps)

    def as_dict(self) -> dict:
        return {"steps": [step.as_dict() for step in self.steps]}

    @classmethod
    def from_dict(cls, data: dict) -> "Schedule":
        return cls([ScheduleStep.from_dict(s) for s in data["steps"]])

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        return cls.from_dict(json.loads(text))


class ScheduleRunner:
    """Installs a :class:`Schedule` onto a live deployment's timeline.

    Parameters
    ----------
    mrp:
        The deployment whose roles the step targets name.
    partition / loss:
        The partition object and tunable loss the deployment's network
        was built with (the fuzz driver stacks
        ``NetworkPartition(..., underlying=TunableLoss())``).
    extra_roles:
        Additional crashable roles living above the ordering layer,
        keyed by target name (e.g. ``"replica:0"`` -> a
        :class:`~repro.smr.replica.Replica`). Anything with ``crash`` /
        ``restart`` / ``crashed`` / ``node`` qualifies.

    The runner records every target it *actually* brought back from a
    crash — scheduled restarts and the :meth:`heal_everything` epilogue
    alike — in :attr:`restarted`. The driver's liveness-after-restart
    check reads that set: those are exactly the roles whose recovery
    path ran and must therefore converge.
    """

    def __init__(
        self,
        mrp: "MultiRingPaxos",
        partition: NetworkPartition,
        loss: TunableLoss,
        extra_roles: dict[str, object] | None = None,
    ) -> None:
        self.mrp = mrp
        self.partition = partition
        self.loss = loss
        self.extra_roles: dict[str, object] = dict(extra_roles or {})
        self.restarted: set[str] = set()
        self.faults = FaultSchedule(mrp.sim)
        self._base_delay = mrp.network.propagation_delay
        self._base_disk_rates = {
            name: node.disk.drain.rate
            for name, node in mrp.network.nodes.items()
            if node.disk is not None
        }

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, schedule: Schedule) -> "ScheduleRunner":
        """Schedule every step; resolution happens when each step fires."""
        for step in schedule.steps:
            self._install_step(step)
        return self

    def _install_step(self, step: ScheduleStep) -> None:
        t, action = step.time, step.action
        if action in ("crash", "restart"):
            assert step.target is not None
            self.faults.act_at(t, f"{action} {step.target}", self._role_action, action, step.target)
        elif action == "partition":
            assert step.island is not None
            self.faults.repartition_at(t, self.partition, step.island)
        elif action == "heal":
            self.faults.heal_at(t, self.partition)
        elif action == "loss":
            assert step.p is not None
            self.faults.set_loss_at(t, self.loss, step.p)
        elif action == "loss_end":
            self.faults.set_loss_at(t, self.loss, 0.0)
        elif action == "slow_net":
            assert step.factor is not None
            self.faults.act_at(t, f"slow_net x{step.factor:g}", self._set_delay, step.factor)
        elif action == "slow_net_end":
            self.faults.act_at(t, "slow_net_end", self._set_delay, 1.0)
        elif action == "slow_disk":
            assert step.factor is not None
            self.faults.act_at(t, f"slow_disk /{step.factor:g}", self._scale_disks, step.factor)
        elif action == "slow_disk_end":
            self.faults.act_at(t, "slow_disk_end", self._scale_disks, 1.0)
        elif action == "wan_partition":
            assert step.island is not None and len(step.island) == 2
            a, b = step.island
            self.faults.act_at(t, f"wan_partition {a}|{b}", self._wan_partition, a, b)
        elif action == "wan_heal":
            self.faults.act_at(t, "wan_heal", self._wan_heal)
        elif action == "wan_jitter":
            assert step.factor is not None
            self.faults.act_at(t, f"wan_jitter x{step.factor:g}", self._wan_jitter, step.factor)
        elif action == "wan_jitter_end":
            self.faults.act_at(t, "wan_jitter_end", self._wan_jitter, 1.0)
        elif action == "remap":
            assert step.group is not None and step.ring is not None
            self.faults.act_at(t, f"remap group {step.group} -> ring {step.ring}",
                               self._remap, step.group, step.ring)
        elif action == "ring_split":
            assert step.ring is not None
            self.faults.act_at(t, f"ring_split {step.ring}", self._ring_split, step.ring)
        elif action == "ring_merge":
            assert step.island is not None and len(step.island) == 2
            src, dst = step.island
            self.faults.act_at(t, f"ring_merge {src} -> {dst}",
                               self._ring_merge, int(src), int(dst))

    # ------------------------------------------------------------------
    # Step actions
    # ------------------------------------------------------------------
    def resolve(self, target: str):
        """The live role object a target names, or None if it is gone.

        Targets: ``coordinator:R`` (the ring's *current* coordinator),
        ``acceptor:R:I``, ``learner:I``, ``proposer:I``, plus anything
        in ``extra_roles``. A target that no longer resolves — an
        acceptor index vacated by a reconfiguration — yields None.
        """
        role = self.extra_roles.get(target)
        if role is not None:
            return role
        kind, _, rest = target.partition(":")
        try:
            if kind == "coordinator":
                return self.mrp.rings[int(rest)].coordinator
            if kind == "acceptor":
                ring_s, _, index_s = rest.partition(":")
                return self.mrp.rings[int(ring_s)].acceptors[int(index_s)]
            if kind == "learner":
                return self.mrp.learners[int(rest)]
            if kind == "proposer":
                return self.mrp.proposers[int(rest)]
        except (IndexError, KeyError):
            return None
        raise ConfigurationError(f"unknown schedule target {target!r}")

    def _role_action(self, action: str, target: str) -> None:
        """Crash or restart the role ``target`` names, as of *now*.

        Both operations are idempotent (crashing a crashed process or
        restarting a running one is a no-op), so generated schedules never
        need global coordination. A target that no longer resolves is
        skipped: the schedule stays applicable to whatever the deployment
        has become.
        """
        kind, _, rest = target.partition(":")
        if kind == "coordinator" and target not in self.extra_roles:
            try:
                ring = int(rest)
                handle = self.mrp.rings[ring]
            except (KeyError, ValueError):
                return
            if action == "crash":
                self.mrp.crash_coordinator(ring)
            else:
                if handle.coordinator.crashed:
                    self.restarted.add(target)
                self.mrp.restart_coordinator(ring)
            return
        role = self.resolve(target)
        if role is None:
            return
        if action == "crash":
            role.crash()
            role.node.crash()
        else:
            if role.crashed:
                self.restarted.add(target)
            role.node.restart()
            role.restart()

    def _set_delay(self, factor: float) -> None:
        self.mrp.network.propagation_delay = self._base_delay * factor

    # WAN steps resolve against the network lazily (and no-op on a
    # single-switch fabric), so one schedule file stays applicable to
    # both kinds of deployment — like role targets that no longer exist.
    def _wan_partition(self, a: str, b: str) -> None:
        network = self.mrp.network
        if hasattr(network, "partition_wan"):
            network.partition_wan(a, b)

    def _wan_heal(self) -> None:
        network = self.mrp.network
        if hasattr(network, "heal_wan"):
            network.heal_wan()

    def _wan_jitter(self, factor: float) -> None:
        network = self.mrp.network
        if hasattr(network, "set_wan_jitter_scale"):
            network.set_wan_jitter_scale(factor)

    def _scale_disks(self, factor: float) -> None:
        for name, base_rate in self._base_disk_rates.items():
            self.mrp.network.nodes[name].disk.drain.rate = base_rate / factor

    # Elasticity steps hand operations to the reconfiguration manager,
    # which queues and retries them on its own. Like role targets that no
    # longer resolve, an operation the current configuration rejects — a
    # group already moved away, a ring retired by an earlier merge — is
    # skipped, so a schedule stays applicable to whatever the deployment
    # has become (and to shrunk variants of itself).
    def _remap(self, group: int, ring: int) -> None:
        try:
            self.mrp.reconfig.remap_group(group, ring)
        except ConfigurationError:
            pass

    def _ring_split(self, ring: int) -> None:
        try:
            self.mrp.reconfig.split_ring(ring)
        except ConfigurationError:
            pass

    def _ring_merge(self, source: int, target: int) -> None:
        try:
            self.mrp.reconfig.merge_rings(source, target)
        except ConfigurationError:
            pass

    # ------------------------------------------------------------------
    # The driver's epilogue
    # ------------------------------------------------------------------
    def heal_everything(self) -> None:
        """Clear every fault as of *now*: the liveness-after-heal baseline.

        Heals the partition, zeroes the loss, restores link and disk
        speeds, and restarts every role and machine. All idempotent — the
        driver calls this unconditionally after the scheduled window, so
        liveness is always checked against a whole network (a schedule
        that never heals must not read as a liveness bug).
        """
        self.partition.heal()
        self.loss.set(0.0)
        self._set_delay(1.0)
        self._scale_disks(1.0)
        self._wan_heal()
        self._wan_jitter(1.0)
        for ring_id, handle in self.mrp.rings.items():
            for i, acceptor in enumerate(handle.acceptors):
                if acceptor.crashed:
                    self.restarted.add(f"acceptor:{ring_id}:{i}")
                acceptor.node.restart()
                acceptor.restart()
            if handle.coordinator.crashed:
                self.restarted.add(f"coordinator:{ring_id}")
            self.mrp.restart_coordinator(ring_id)
        # Extra roles first: a crashed replica must restore its checkpoint
        # (which rolls its learner back while still crashed) before the
        # learner sweep below would revive that learner in place.
        for target, role in self.extra_roles.items():
            if role.crashed:
                self.restarted.add(target)
            role.node.restart()
            role.restart()
        for kind, roles in (("learner", self.mrp.learners), ("proposer", self.mrp.proposers)):
            for i, role in enumerate(roles):
                if role.crashed:
                    self.restarted.add(f"{kind}:{i}")
                role.node.restart()
                role.restart()
