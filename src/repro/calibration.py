"""Calibration constants mapping the paper's testbed onto the simulator.

The paper ran on Dell SC1435 servers (2x dual-core Opteron 2.0 GHz) behind
an HP ProCurve Gigabit switch with 0.1 ms RTT, with commodity disks for
Recoverable mode. These constants are chosen so the simulated substrate
saturates where the paper's hardware did:

* **In-memory Ring Paxos** is CPU-bound at the coordinator at ~700 Mbps of
  8 KB values (Figure 1, "97.6%" annotation). The coordinator's hot path
  per value is: receive it from the proposer, ip-multicast the Phase 2A
  packet, process the ring's Phase 2B, and emit the decision. With
  ``CPU_BYTE_COST_COORDINATOR`` = 1.0e-8 s/B and 8 us fixed per value, one
  8 KB value costs ~90 us of coordinator CPU => saturation at ~11.1 K
  values/s = ~730 Mbps, i.e. ~96% utilization at 700 Mbps.
* **Recoverable Ring Paxos** is disk-bound at ~400 Mbps (Figure 1): each
  acceptor sustains ``DISK_BANDWIDTH`` = 50 MB/s of buffered writes. At
  that point the coordinator CPU sits near 400/730 ~ 55-60%, matching the
  figure's "57.5% / 62.5%" annotations.
* **Learners** saturate their 1 Gbps ingress link when subscribed to
  enough rings (Figure 6: 2 rings for In-memory, 3 for Recoverable).

Changing these values re-scales the absolute numbers but preserves every
qualitative claim; the benchmark suite asserts only shapes and ratios.
"""

from __future__ import annotations

__all__ = [
    "LINK_BANDWIDTH_BYTES_PER_S",
    "ONE_WAY_PROPAGATION_S",
    "CPU_BYTE_COST_COORDINATOR",
    "CPU_FIXED_COST_COORDINATOR",
    "CPU_BYTE_COST_ACCEPTOR",
    "CPU_FIXED_COST_ACCEPTOR",
    "CPU_BYTE_COST_LEARNER",
    "CPU_FIXED_COST_LEARNER",
    "CPU_FIXED_COST_SMALL_MESSAGE",
    "DISK_BANDWIDTH_BYTES_PER_S",
    "DISK_BUFFER_BYTES",
    "DEFAULT_VALUE_SIZE",
    "BATCH_SIZE_BYTES",
    "BATCH_TIMEOUT_S",
    "CONTROL_MESSAGE_SIZE",
    "SKIP_MESSAGE_SIZE",
    "mbps_to_bytes_per_s",
    "bytes_per_s_to_mbps",
]

# ---------------------------------------------------------------------------
# Fabric (Section VI-A: Gigabit switch, 0.1 ms round-trip time)
# ---------------------------------------------------------------------------
LINK_BANDWIDTH_BYTES_PER_S = 1e9 / 8.0
ONE_WAY_PROPAGATION_S = 50e-6

# ---------------------------------------------------------------------------
# CPU costs (processor-seconds). "Coordinator" covers the full per-value
# hot path at the distinguished acceptor; plain acceptors and learners do
# strictly less work per value.
# ---------------------------------------------------------------------------
CPU_BYTE_COST_COORDINATOR = 1.0e-8
CPU_FIXED_COST_COORDINATOR = 8e-6
CPU_BYTE_COST_ACCEPTOR = 2.5e-9
CPU_FIXED_COST_ACCEPTOR = 3e-6
CPU_BYTE_COST_LEARNER = 3.0e-9
CPU_FIXED_COST_LEARNER = 4e-6
CPU_FIXED_COST_SMALL_MESSAGE = 2e-6

# ---------------------------------------------------------------------------
# Disk (Recoverable mode): 50 MB/s sustained = 400 Mbps, buffered writes.
# ---------------------------------------------------------------------------
DISK_BANDWIDTH_BYTES_PER_S = 50e6
DISK_BUFFER_BYTES = 4 * 1024 * 1024

# ---------------------------------------------------------------------------
# Protocol framing (Section VI-A: 8 KB application messages; Ring Paxos
# batches values into 8 KB consensus instances with a small timeout).
# ---------------------------------------------------------------------------
DEFAULT_VALUE_SIZE = 8 * 1024
BATCH_SIZE_BYTES = 8 * 1024
BATCH_TIMEOUT_S = 1e-3
CONTROL_MESSAGE_SIZE = 64
SKIP_MESSAGE_SIZE = 64


def mbps_to_bytes_per_s(mbps: float) -> float:
    """Convert megabits/second to bytes/second."""
    return mbps * 1e6 / 8.0


def bytes_per_s_to_mbps(rate: float) -> float:
    """Convert bytes/second to megabits/second."""
    return rate * 8.0 / 1e6
