"""Message-loss models for the simulated network.

The paper's model (Section II-A) allows messages to be lost but not
corrupted. Losses are applied independently per receiver — matching UDP
ip-multicast, where each subscriber's NIC may drop a datagram the others
receive — which is what exercises Ring Paxos's learner recovery path.
"""

from __future__ import annotations

import random
from typing import Protocol

__all__ = ["LossModel", "NoLoss", "UniformLoss", "BurstLoss", "TunableLoss"]


class LossModel(Protocol):
    """Decides, per (src, dst, size) transmission leg, whether to drop."""

    def should_drop(self, rng: random.Random, src: str, dst: str, size: int) -> bool:
        """Return True to drop this copy of the message."""
        ...  # pragma: no cover - protocol definition


class NoLoss:
    """The default: a reliable network (losses disabled)."""

    def should_drop(self, rng: random.Random, src: str, dst: str, size: int) -> bool:
        return False


class UniformLoss:
    """Drop each receiver-leg independently with probability ``p``.

    The degenerate probabilities short-circuit without consuming a random
    draw (matching :class:`TunableLoss`): ``UniformLoss(0.0)`` is
    stream-equivalent to :class:`NoLoss`, so swapping one for the other
    cannot perturb an otherwise identical seeded run.
    """

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("loss probability must be within [0, 1]")
        self.p = p

    def should_drop(self, rng: random.Random, src: str, dst: str, size: int) -> bool:
        p = self.p
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return rng.random() < p


class TunableLoss:
    """Uniform loss whose probability can change mid-run.

    The fuzz harness (``repro.check``) uses this for *loss phases*: a
    generated schedule raises the drop probability for a window and resets
    it to zero afterwards. At ``p == 0`` no random draw is consumed, so a
    schedule without loss phases leaves the loss stream untouched.
    """

    def __init__(self, p: float = 0.0) -> None:
        self.set(p)
        self.dropped = 0

    def set(self, p: float) -> None:
        """Change the drop probability (takes effect immediately)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("loss probability must be within [0, 1]")
        self.p = p

    def should_drop(self, rng: random.Random, src: str, dst: str, size: int) -> bool:
        if self.p <= 0.0:
            return False
        if rng.random() < self.p:
            self.dropped += 1
            return True
        return False


class BurstLoss:
    """Gilbert-Elliott style bursty loss.

    Two states per (src, dst) pair: GOOD (no loss) and BAD (all loss).
    Transitions happen per transmission with the given probabilities. This
    models switch-buffer overruns, which drop runs of consecutive packets —
    the worst case for gap-detection-based recovery.
    """

    def __init__(self, p_enter_bad: float = 0.001, p_exit_bad: float = 0.3) -> None:
        if not 0.0 <= p_enter_bad <= 1.0 or not 0.0 <= p_exit_bad <= 1.0:
            raise ValueError("transition probabilities must be within [0, 1]")
        self.p_enter_bad = p_enter_bad
        self.p_exit_bad = p_exit_bad
        self._bad: set[tuple[str, str]] = set()

    def should_drop(self, rng: random.Random, src: str, dst: str, size: int) -> bool:
        key = (src, dst)
        if key in self._bad:
            if rng.random() < self.p_exit_bad:
                self._bad.discard(key)
                return False
            return True
        if rng.random() < self.p_enter_bad:
            self._bad.add(key)
            return True
        return False
