"""Event primitives for the discrete-event simulation kernel.

The kernel is a classic calendar queue: events are ``(time, seq)``-ordered
callbacks kept in a binary heap. ``seq`` is a monotonically increasing
tie-breaker so that two events scheduled for the same instant fire in the
order they were scheduled — this is what makes simulations bit-for-bit
deterministic for a given seed.

Performance notes (the heap is the hottest code in the whole simulator —
profiled at >15% of a full protocol run):

* Every heap entry is a plain ``(time, seq, fn, args, event)`` tuple, so
  ordering comparisons run as C tuple comparisons and never reach the
  third element (``seq`` is unique).
* The last slot is ``None`` on the **fast path** (:meth:`EventQueue
  .push_fast`): events that will never be cancelled — message arrivals,
  queue completions, the ~95% case — pay one tuple and one ``heappush``,
  no :class:`Event` object. Only cancellable timers go through
  :meth:`EventQueue.push`, which allocates the ``Event`` handle that
  :meth:`EventQueue.cancel` needs.
* Consumers that need one heap inspection per event (the fused
  ``Simulator.run`` loop) use :meth:`EventQueue.pop_entry` /
  :meth:`EventQueue.peek_entry`; the ``peek_time()`` + ``pop()`` pair is
  kept for single-stepping and tests but costs two top-of-heap scans.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable

__all__ = ["Event", "EventQueue"]


class Event:
    """A scheduled callback that can still be cancelled.

    Use :meth:`cancel` to neutralise an event that is already queued —
    cancelled events are skipped (and dropped lazily) by
    :class:`EventQueue`. Events never participate in ordering themselves;
    the queue orders its ``(time, seq)`` keys.

    A plain ``__slots__`` class rather than a dataclass: one is allocated
    per cancellable timer (~10% of scheduled events in a protocol run),
    and the hand-written ``__init__`` is measurably cheaper.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "consumed")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple[Any, ...] = (),
        cancelled: bool = False,
        consumed: bool = False,  # set by EventQueue.pop(); guards late cancels
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = cancelled
        self.consumed = consumed

    def cancel(self) -> None:
        """Mark this event so it will not fire when popped."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (caller must check :attr:`cancelled`)."""
        self.fn(*self.args)

    def __repr__(self) -> str:
        flags = "".join(
            flag for flag, on in ((" cancelled", self.cancelled), (" consumed", self.consumed)) if on
        )
        return f"<Event t={self.time!r} seq={self.seq}{flags}>"


class EventQueue:
    """A min-heap of scheduled callbacks with lazy cancellation.

    Cancelled events stay in the heap until they surface at the top, at
    which point they are discarded. This keeps cancellation O(1) while
    pops remain O(log n) amortised.
    """

    __slots__ = ("_heap", "_seq", "_cancelled")

    def __init__(self) -> None:
        # Entries are (time, seq, fn, args, event-or-None); see module doc.
        # The live count is derived (len(heap) minus pending cancelled
        # entries) so the pop hot path does zero counter bookkeeping.
        # seq is an itertools.count: one C call per ticket instead of a
        # load/add/store round-trip, shared with Simulator.post/post_at.
        self._heap: list[tuple[float, int, Callable[..., None], tuple, Event | None]] = []
        self._seq = count()
        self._cancelled = 0  # cancelled entries still buried in the heap

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    def __bool__(self) -> bool:
        return len(self._heap) > self._cancelled

    def push(self, time: float, fn: Callable[..., None], args: tuple[Any, ...] = ()) -> Event:
        """Insert a cancellable callback firing at ``time``; returns its Event."""
        seq = next(self._seq)
        event = Event(time=time, seq=seq, fn=fn, args=args)
        heapq.heappush(self._heap, (time, seq, fn, args, event))
        return event

    def push_fast(self, time: float, fn: Callable[..., None], args: tuple[Any, ...] = ()) -> None:
        """Fast path: insert a fire-and-forget callback (not cancellable).

        No :class:`Event` is allocated; the entry is a bare heap tuple.
        """
        heapq.heappush(self._heap, (time, next(self._seq), fn, args, None))

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` if it has not fired yet (idempotent).

        Cancelling an event that was already popped (fired) is a no-op:
        a popped event no longer counts towards ``len()``, so counting it
        again would drive the live count negative.
        """
        if not event.cancelled and not event.consumed:
            event.cancel()
            self._cancelled += 1

    def peek_entry(self) -> tuple | None:
        """The next live heap entry without removing it, or None if empty.

        Drops cancelled entries from the top as a side effect, so callers
        pairing this with :meth:`pop_entry` pay a single scan per event.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[4]
            if event is not None and event.cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            return entry
        return None

    def pop_entry(self) -> tuple | None:
        """Remove and return the next live heap entry, or None if empty.

        The entry is ``(time, seq, fn, args, event-or-None)``; a non-None
        event is marked consumed (late cancels become no-ops).
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            event = entry[4]
            if event is not None:
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                event.consumed = True
            return entry
        return None

    def peek_time(self) -> float | None:
        """Return the firing time of the next live event, or None if empty."""
        entry = self.peek_entry()
        return entry[0] if entry is not None else None

    def pop(self) -> Event | None:
        """Remove and return the next live event, or None if empty.

        Compatibility shim over :meth:`pop_entry`: fast-path entries have
        no :class:`Event`, so one is materialized (already consumed) for
        the caller. Hot loops should use :meth:`pop_entry` directly.
        """
        entry = self.pop_entry()
        if entry is None:
            return None
        event = entry[4]
        if event is None:
            event = Event(
                time=entry[0], seq=entry[1], fn=entry[2], args=entry[3], consumed=True
            )
        return event
