"""Event primitives for the discrete-event simulation kernel.

The kernel is a **bucketed calendar queue**: events are ``(time, seq)``-
ordered callbacks distributed over a ring of time buckets. ``seq`` is a
monotonically increasing tie-breaker so that two events scheduled for the
same instant fire in the order they were scheduled — this is what makes
simulations bit-for-bit deterministic for a given seed. The calendar is a
pure *storage* layout: delivery order is always the exact ``(time, seq)``
total order, independent of bucket width, so golden traces are identical
to the binary-heap kernel this replaced.

Layout (the queue is the hottest code in the whole simulator — profiled
at >15% of a full protocol run):

* **Ring**: ``NBUCKETS`` bucket lists of width ``1 / _winv`` seconds.
  An event at time ``t`` lands in bucket ``int(t * _winv)``; a push is a
  plain list append. Draining takes a whole bucket at once, sorts it
  (Timsort on an almost-sorted few-entry list), and serves it as the
  current *batch* — one heap-free scan per event instead of an
  O(log n) sift per push **and** per pop.
* **Occupancy heap** (``_ids``): a small heap of the occupied bucket
  indices, pushed only on an empty-to-nonempty transition. Advancing to
  the next nonempty bucket is a single ``heappop`` even when the
  schedule is sparse — no slot scanning.
* **Overflow tier** (``_overflow``): a plain entry heap for events
  beyond the ring horizon (``NBUCKETS`` buckets ahead), e.g. tens-of-ms
  retry timers. Overflow entries migrate into their bucket's batch when
  the cursor reaches them, merged by a full ``(time, seq)`` sort.
* **Reentry list** (``_reentry``): pushes into the bucket currently
  being drained (zero/short delays). Entries here strictly precede
  everything still in the ring or overflow tier (their bucket is at or
  behind the cursor), and are merged into the live batch by sorted
  insertion before the next event fires.
* **Adaptive width**: every ``ADJUST_EVERY`` batches the queue compares
  the observed event density against ``TARGET_PER_BUCKET`` and resizes
  the bucket width (between ``1 / W_INV_MAX`` and ``1 / W_INV_MIN``),
  re-bucketing in O(pending). Protocol runs sit near sub-µs NIC/CPU
  service times while idle phases are timer-sparse; one static width
  cannot serve both regimes. Bimodal schedules (dense sub-µs protocol
  events interleaved with tens-of-ms WAN hops) can make the two signals
  disagree forever — the density average asks for wide buckets, which
  immediately reenter and trigger the narrow escape — so widening
  resizes back off exponentially after each escape instead of flapping
  every other adjustment period (each flap re-buckets all pending
  entries; a WAN-stretched geo run used to spend ~10% of its wall clock
  there).

Every entry is a plain ``(time, seq, fn, args, event-or-None)`` tuple, so
ordering comparisons run as C tuple comparisons and never reach the third
element (``seq`` is unique). The last slot is ``None`` on the **fast
path** (:meth:`EventQueue.push_fast`): events that will never be
cancelled — message arrivals, queue completions, the ~95% case — pay one
tuple and one append, no :class:`Event` object. Only cancellable timers
go through :meth:`EventQueue.push`, which allocates the ``Event`` handle
that :meth:`EventQueue.cancel` needs.

Consumers that single-step (tests, :meth:`Simulator.step`) use
:meth:`EventQueue.pop_entry` / :meth:`EventQueue.peek_entry`; the fused
``Simulator.run`` loop drains the live batch in place. ``peek_entry``
never consumes a live entry, so callbacks may peek mid-run to ask "what
fires next?" — the completion strips in ``server.py`` rely on this to
sweep several queued completions through one kernel event without
breaking the total order.
"""

from __future__ import annotations

import heapq
from bisect import insort
from itertools import count
from typing import Any, Callable

__all__ = ["Event", "EventQueue"]

# Calendar geometry. NBUCKETS is a power of two so the ring index is a
# mask; the horizon (NBUCKETS buckets) must comfortably exceed one
# scheduling quantum of the protocols (sub-ms service times) at the
# narrowest width: 16384 * 0.5 µs ≈ 8 ms.
NBUCKETS = 16384
_MASK = NBUCKETS - 1

# Width bounds and the density the adaptive policy aims for. The
# narrowest width (0.5 µs) keeps back-to-back NIC serializations of
# small frames in distinct buckets; the widest (0.5 s) serves
# timer-only idle phases.
W_INV_MAX = 2e6
W_INV_MIN = 2.0
ADJUST_EVERY = 128
TARGET_PER_BUCKET = 8.0
# Widening backoff cap: after repeated reentry escapes, a widening
# resize is attempted at most once per this many adjustment periods.
WIDEN_BACKOFF_CAP = 64


class Event:
    """A scheduled callback that can still be cancelled.

    Use :meth:`cancel` to neutralise an event that is already queued —
    cancelled events are skipped (and dropped lazily) by
    :class:`EventQueue`. Events never participate in ordering themselves;
    the queue orders its ``(time, seq)`` keys.

    A plain ``__slots__`` class rather than a dataclass: one is allocated
    per cancellable timer (~10% of scheduled events in a protocol run),
    and the hand-written ``__init__`` is measurably cheaper.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "consumed")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple[Any, ...] = (),
        cancelled: bool = False,
        consumed: bool = False,  # set by EventQueue.pop(); guards late cancels
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = cancelled
        self.consumed = consumed

    def cancel(self) -> None:
        """Mark this event so it will not fire when popped."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (caller must check :attr:`cancelled`)."""
        self.fn(*self.args)

    def __repr__(self) -> str:
        flags = "".join(
            flag for flag, on in ((" cancelled", self.cancelled), (" consumed", self.consumed)) if on
        )
        return f"<Event t={self.time!r} seq={self.seq}{flags}>"


class EventQueue:
    """A calendar queue of scheduled callbacks with lazy cancellation.

    Cancelled events stay in their bucket until the drain reaches them,
    at which point they are discarded. This keeps cancellation O(1)
    while the drain stays a linear scan.

    Ordering invariant (relied on everywhere): an entry is delivered
    strictly after every entry with a smaller ``(time, seq)`` key,
    regardless of which tier (batch, reentry, ring, overflow) it sits
    in. Reentry entries have bucket <= cursor, so their times are
    strictly below the start of any ring/overflow bucket > cursor; the
    batch is consumed in sorted order with reentry merged in front of
    the read index before the next event fires.
    """

    __slots__ = (
        "_ring", "_ids", "_overflow", "_reentry", "_batch", "_bi",
        "_cursor", "_winv", "_seq", "_cancelled",
        "_adj_batches", "_adj_drained", "_adj_reentered", "_adj_t0",
        "_adj_skip", "_adj_backoff",
    )

    def __init__(self) -> None:
        # seq is an itertools.count: one C call per ticket instead of a
        # load/add/store round-trip, shared with Simulator.post/post_at.
        self._ring: list[list[tuple] | None] = [None] * NBUCKETS
        self._ids: list[int] = []        # heap of occupied bucket indices
        self._overflow: list[tuple] = []  # entry heap beyond the horizon
        self._reentry: list[tuple] = []  # pushes at/behind the cursor bucket
        self._batch: list[tuple] = []    # current bucket, sorted
        self._bi = 0                     # next unread index into _batch
        self._cursor = -1                # bucket currently (last) drained
        self._winv = W_INV_MAX           # buckets per second (1 / width)
        self._seq = count()
        self._cancelled = 0  # cancelled entries still buried in the queue
        # Width-adaptation counters, reset every ADJUST_EVERY batches.
        self._adj_batches = 0
        self._adj_drained = 0
        self._adj_reentered = 0
        self._adj_t0 = 0.0
        # Flap damping: adjustment periods left before the next widening
        # resize may fire, and the backoff level the next reentry escape
        # will re-arm it to (doubles per escape, capped).
        self._adj_skip = 0
        self._adj_backoff = 1

    def __len__(self) -> int:
        n = len(self._batch) - self._bi + len(self._reentry) + len(self._overflow)
        ring = self._ring
        for b in self._ids:
            n += len(ring[b & _MASK])  # type: ignore[arg-type]
        return n - self._cancelled

    def __bool__(self) -> bool:
        return len(self) > 0

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def _push_entry(self, entry: tuple) -> None:
        """File ``entry`` into the tier its bucket falls in."""
        b = int(entry[0] * self._winv)
        d = b - self._cursor
        if 0 < d < NBUCKETS:
            ring = self._ring
            s = b & _MASK
            lst = ring[s]
            if lst:
                lst.append(entry)
            else:
                if lst is None:
                    ring[s] = [entry]
                else:
                    lst.append(entry)
                heapq.heappush(self._ids, b)
        elif d <= 0:
            self._reentry.append(entry)
        else:
            heapq.heappush(self._overflow, entry)

    def push(self, time: float, fn: Callable[..., None], args: tuple[Any, ...] = ()) -> Event:
        """Insert a cancellable callback firing at ``time``; returns its Event."""
        seq = next(self._seq)
        event = Event(time=time, seq=seq, fn=fn, args=args)
        self._push_entry((time, seq, fn, args, event))
        return event

    def push_fast(self, time: float, fn: Callable[..., None], args: tuple[Any, ...] = ()) -> None:
        """Fast path: insert a fire-and-forget callback (not cancellable).

        No :class:`Event` is allocated; the entry is a bare tuple.
        """
        self._push_entry((time, next(self._seq), fn, args, None))

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` if it has not fired yet (idempotent).

        Cancelling an event that was already popped (fired) is a no-op:
        a popped event no longer counts towards ``len()``, so counting it
        again would drive the live count negative.
        """
        if not event.cancelled and not event.consumed:
            event.cancel()
            self._cancelled += 1

    # ------------------------------------------------------------------
    # Batch machinery (shared with the fused Simulator.run loop)
    # ------------------------------------------------------------------
    def _merge_reentry(self) -> None:
        """Sort pending reentry pushes into the unread part of the batch."""
        reentry = self._reentry
        batch = self._batch
        bi = self._bi
        if bi < len(batch):
            self._adj_reentered += len(reentry)
            for entry in reentry:
                insort(batch, entry, bi)
            reentry.clear()
        # else: the batch is spent; _next_batch drains reentry first.

    def _next_batch(self) -> list[tuple] | None:
        """Install the next bucket's entries as the current batch.

        Returns the new (sorted, non-empty) batch, or None when the
        queue is empty. Caller guarantees the current batch is fully
        consumed (``_bi >= len(_batch)``).
        """
        reentry = self._reentry
        if reentry:
            # Entries at/behind the cursor bucket strictly precede
            # anything still in the ring or overflow tier.
            batch = sorted(reentry)
            reentry.clear()
            self._batch = batch
            self._bi = 0
            self._adj_drained += len(batch)
            self._adj_reentered += len(batch)
            return batch
        self._adj_batches += 1
        if self._adj_batches >= ADJUST_EVERY:
            self._maybe_adjust()
            if reentry:
                # A resize reclassified stored entries whose bucket now
                # falls at/behind the recomputed cursor; they precede
                # whatever the re-bucketed ring/overflow holds. Not
                # counted as "reentered": that counter is a bucket-width
                # density signal and these moves say nothing about it.
                batch = sorted(reentry)
                reentry.clear()
                self._batch = batch
                self._bi = 0
                self._adj_drained += len(batch)
                return batch
        ids = self._ids
        overflow = self._overflow
        winv = self._winv
        if ids:
            i = ids[0]
            if overflow and overflow[0][0] * winv < i:
                # The overflow tier reaches a bucket before the ring does.
                i = int(overflow[0][0] * winv)
                batch = []
            else:
                heapq.heappop(ids)
                s = i & _MASK
                batch = self._ring[s]  # type: ignore[assignment]
                self._ring[s] = []
        elif overflow:
            i = int(overflow[0][0] * winv)
            batch = []
        else:
            self._batch = []
            self._bi = 0
            return None
        self._cursor = i
        if overflow:
            # Migrate overflow entries that belong to this bucket.
            lim = i + 1
            pop = heapq.heappop
            while overflow and overflow[0][0] * winv < lim:
                batch.append(pop(overflow))
        batch.sort()
        self._batch = batch
        self._bi = 0
        self._adj_drained += len(batch)
        return batch

    def _maybe_adjust(self) -> None:
        """Re-tune the bucket width to the observed event density.

        Narrowing (reentry escape, density overshoot) always applies:
        narrow buckets are performance-safe, just sparser. Widening is
        where a bimodal schedule flaps — the density average asks for
        wide buckets that the dense mode immediately reenters out of —
        so each reentry escape doubles a backoff counter and widening
        resizes are skipped for that many adjustment periods. One calm
        period (no resize wanted, negligible reentry) disarms the
        backoff, so genuine regime changes still widen at full speed.
        """
        drained = self._adj_drained
        reentered = self._adj_reentered
        self._adj_batches = 0
        self._adj_drained = 0
        self._adj_reentered = 0
        winv = self._winv
        t = self._cursor / winv
        span = t - self._adj_t0
        self._adj_t0 = t
        if reentered * 2 > drained:
            # Buckets too wide: events keep landing at/behind the drain.
            target = winv * 4.0
            if target > W_INV_MAX:
                target = W_INV_MAX
            if target / winv > 2.0:
                self._adj_backoff = min(self._adj_backoff * 2, WIDEN_BACKOFF_CAP)
                self._adj_skip = self._adj_backoff
                self._resize(target)
            return
        if span <= 0.0 or drained == 0:
            return
        target = drained / (span * TARGET_PER_BUCKET)
        if target > W_INV_MAX:
            target = W_INV_MAX
        elif target < W_INV_MIN:
            target = W_INV_MIN
        ratio = target / winv
        if ratio > 2.0:
            self._resize(target)
        elif ratio < 0.5:
            if self._adj_skip > 0:
                self._adj_skip -= 1
                return
            self._resize(target)
        elif reentered * 8 < drained:
            # Width fits and reentry is quiet: the schedule is unimodal
            # again, so the next widening need not wait out the backoff.
            self._adj_skip = 0
            self._adj_backoff = 1

    def _resize(self, winv: float) -> None:
        """Re-bucket every stored entry under a new width. O(pending)."""
        entries: list[tuple] = []
        ring = self._ring
        for b in self._ids:
            s = b & _MASK
            lst = ring[s]
            if lst:
                entries.extend(lst)
                ring[s] = []
        self._ids.clear()
        entries.extend(self._overflow)
        del self._overflow[:]
        old_cursor = self._cursor
        old_winv = self._winv
        self._winv = winv
        self._cursor = int(old_cursor / old_winv * winv) if old_cursor > 0 else -1
        self._adj_t0 = self._cursor / winv
        push_entry = self._push_entry
        for entry in entries:
            push_entry(entry)

    # ------------------------------------------------------------------
    # Single-step interface
    # ------------------------------------------------------------------
    def peek_entry(self) -> tuple | None:
        """The next live entry without consuming it, or None if empty.

        Never consumes a live entry, so this is safe to call from inside
        a running callback (the completion strips do). Cancelled entries
        at the front are scanned past; runs of them that end a spent
        batch are discarded before refilling.
        """
        while True:
            if self._reentry:
                self._merge_reentry()
            batch = self._batch
            bi = self._bi
            n = len(batch)
            while bi < n:
                entry = batch[bi]
                event = entry[4]
                if event is not None and event.cancelled:
                    bi += 1
                    continue
                return entry
            if bi > self._bi:
                # Everything left in the batch was cancelled: drop it so
                # the refill below doesn't strand the live count.
                self._cancelled -= bi - self._bi
                self._bi = bi
            if self._next_batch() is None:
                return None

    def pop_entry(self) -> tuple | None:
        """Remove and return the next live entry, or None if empty.

        The entry is ``(time, seq, fn, args, event-or-None)``; a non-None
        event is marked consumed (late cancels become no-ops).
        """
        while True:
            if self._reentry:
                self._merge_reentry()
            batch = self._batch
            bi = self._bi
            n = len(batch)
            while bi < n:
                entry = batch[bi]
                bi += 1
                event = entry[4]
                if event is not None:
                    if event.cancelled:
                        self._cancelled -= 1
                        continue
                    event.consumed = True
                self._bi = bi
                return entry
            self._bi = bi
            if self._next_batch() is None:
                return None

    def peek_time(self) -> float | None:
        """Return the firing time of the next live event, or None if empty."""
        entry = self.peek_entry()
        return entry[0] if entry is not None else None

    def pop(self) -> Event | None:
        """Remove and return the next live event, or None if empty.

        Compatibility shim over :meth:`pop_entry`: fast-path entries have
        no :class:`Event`, so one is materialized (already consumed) for
        the caller. Hot loops should use :meth:`pop_entry` directly.
        """
        entry = self.pop_entry()
        if entry is None:
            return None
        event = entry[4]
        if event is None:
            event = Event(
                time=entry[0], seq=entry[1], fn=entry[2], args=entry[3], consumed=True
            )
        return event
