"""Event primitives for the discrete-event simulation kernel.

The kernel is a classic calendar queue: events are ``(time, seq)``-ordered
callbacks kept in a binary heap. ``seq`` is a monotonically increasing
tie-breaker so that two events scheduled for the same instant fire in the
order they were scheduled — this is what makes simulations bit-for-bit
deterministic for a given seed.

Performance note: heap entries are plain ``(time, seq, event)`` tuples so
that ordering comparisons run as C tuple comparisons — the heap is the
hottest code in the whole simulator (profiled at >15% of a full protocol
run before this layout).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["Event", "EventQueue"]


@dataclass(slots=True)
class Event:
    """A scheduled callback.

    Use :meth:`cancel` to neutralise an event that is already queued —
    cancelled events are skipped (and dropped lazily) by
    :class:`EventQueue`. Events never participate in ordering themselves;
    the queue orders its ``(time, seq)`` keys.
    """

    time: float
    seq: int
    fn: Callable[..., None]
    args: tuple[Any, ...] = ()
    cancelled: bool = False
    consumed: bool = False  # set by EventQueue.pop(); guards late cancels

    def cancel(self) -> None:
        """Mark this event so it will not fire when popped."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (caller must check :attr:`cancelled`)."""
        self.fn(*self.args)


class EventQueue:
    """A min-heap of :class:`Event` with lazy cancellation.

    Cancelled events stay in the heap until they surface at the top, at
    which point they are discarded. This keeps cancellation O(1) while
    pops remain O(log n) amortised.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, fn: Callable[..., None], args: tuple[Any, ...] = ()) -> Event:
        """Insert a callback to fire at simulated ``time``; returns the event."""
        event = Event(time=time, seq=self._seq, fn=fn, args=args)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` if it has not fired yet (idempotent).

        Cancelling an event that was already popped (fired) is a no-op:
        a popped event no longer counts towards ``len()``, so decrementing
        again would drive the live count negative.
        """
        if not event.cancelled and not event.consumed:
            event.cancel()
            self._live -= 1

    def peek_time(self) -> float | None:
        """Return the firing time of the next live event, or None if empty."""
        self._drop_cancelled()
        if self._heap:
            return self._heap[0][0]
        return None

    def pop(self) -> Event | None:
        """Remove and return the next live event, or None if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)[2]
        event.consumed = True
        self._live -= 1
        return event

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
