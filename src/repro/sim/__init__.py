"""Deterministic discrete-event simulation substrate.

This package stands in for the paper's physical testbed: it provides the
clock, machines (CPU + disk), and the switched network (unicast and IP
multicast) that the Paxos, Ring Paxos, and Multi-Ring Paxos protocol
implementations run on. See DESIGN.md section 1 for the substitution
rationale.
"""

from .cpu import Cpu
from .disk import Disk
from .events import Event, EventQueue
from .faults import FaultSchedule, NetworkPartition
from .loss import BurstLoss, LossModel, NoLoss, TunableLoss, UniformLoss
from .network import Network, Nic
from .node import Node
from .process import PeriodicTimer, Process, Timer
from .rng import RandomStreams
from .server import FifoServer
from .simulator import Simulator
from .topology import GeoNetwork, Topology, WanLink
from .trace import TraceEvent, Tracer, trace_network

__all__ = [
    "BurstLoss",
    "Cpu",
    "Disk",
    "Event",
    "EventQueue",
    "FaultSchedule",
    "FifoServer",
    "GeoNetwork",
    "LossModel",
    "Network",
    "NetworkPartition",
    "Nic",
    "NoLoss",
    "Node",
    "PeriodicTimer",
    "Process",
    "RandomStreams",
    "Simulator",
    "Timer",
    "Topology",
    "TunableLoss",
    "TraceEvent",
    "Tracer",
    "UniformLoss",
    "WanLink",
    "trace_network",
]
