"""Switched-Ethernet network model with unicast and IP multicast.

Models the paper's testbed fabric: servers on a non-blocking Gigabit
switch (HP ProCurve, 0.1 ms RTT). Each node has a full-duplex NIC; the
switch itself is non-blocking, so contention happens only at NIC egress
and ingress queues — which is the regime in which Ring Paxos's single
ip-multicast per value is cheap and a learner subscribing to many rings
eventually saturates its own ingress link (Figure 6).

Transmission of a message of ``size`` bytes from ``src`` to ``dst``:

1. serialize at ``src`` egress (FIFO at the NIC bandwidth),
2. propagate through the switch (fixed one-way delay),
3. serialize at ``dst`` ingress (FIFO at the NIC bandwidth),
4. hand to the destination :class:`~repro.sim.node.Node` port.

An ip-multicast pays step 1 **once** and steps 2-4 per subscriber: the
switch replicates the frame in hardware. That asymmetry is the entire
reason Ring Paxos out-throughputs sender-replicated protocols.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import NetworkError
from .completion import CompletionStrip
from .loss import LossModel, NoLoss
from .node import Node
from .server import FifoServer
from .simulator import Simulator, _register_observer

__all__ = ["Nic", "Network", "observe_networks"]

# Observers notified whenever a Network is constructed — the counterpart of
# ``observe_simulators`` for the fabric layer. Empty by default.
_network_observers: list = []


def observe_networks(callback: Callable[["Network"], None]) -> Callable[[], None]:
    """Call ``callback(network)`` for every Network created from now on.

    Returns a zero-argument remover that uninstalls this registration
    (and only this one: double-registering the same callback yields two
    independent removers, each safe to call more than once).
    """
    return _register_observer(_network_observers, callback)


class Nic:
    """Full-duplex network interface: an egress and an ingress queue."""

    __slots__ = (
        "name", "bandwidth", "egress", "ingress", "tx_local", "tx_remote",
        "bytes_sent", "bytes_received", "messages_sent", "messages_received",
    )

    def __init__(self, sim: Simulator, name: str, bandwidth: float) -> None:
        self.name = name
        self.bandwidth = bandwidth
        self.egress = FifoServer(sim, rate=bandwidth, name=f"{name}.tx")
        self.ingress = FifoServer(sim, rate=bandwidth, name=f"{name}.rx")
        # Outbound message legs batched per NIC (see completion.py). Two
        # strips because the two leg kinds ride different offsets of the
        # same egress timeline and would interleave non-monotonically in
        # one FIFO: loopback legs arrive at depart, switched legs at
        # depart + propagation_delay.
        self.tx_local = CompletionStrip(sim)
        self.tx_remote = CompletionStrip(sim)
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0

    def ingress_utilization(self, window: float = 1.0) -> float:
        """Fraction of the last ``window`` seconds the receive link was busy."""
        return self.ingress.utilization(window)

    def egress_utilization(self, window: float = 1.0) -> float:
        """Fraction of the last ``window`` seconds the transmit link was busy."""
        return self.egress.utilization(window)


class Network:
    """The cluster fabric: nodes, their NICs, and multicast groups.

    Parameters
    ----------
    propagation_delay:
        One-way switch latency in seconds (default 50 us, i.e. the paper's
        0.1 ms RTT).
    bandwidth:
        Default NIC bandwidth in bytes per second (default 1 Gbps).
    loss:
        A :class:`~repro.sim.loss.LossModel`; losses are evaluated
        independently per receiver leg.
    """

    # No __slots__: trace_network replaces send/multicast per instance,
    # and there is only one Network per simulation anyway.

    def __init__(
        self,
        sim: Simulator,
        propagation_delay: float = 50e-6,
        bandwidth: float = 1e9 / 8,
        loss: LossModel | None = None,
    ) -> None:
        self.sim = sim
        self.propagation_delay = propagation_delay
        self.default_bandwidth = bandwidth
        self.loss = loss if loss is not None else NoLoss()
        self._rng = sim.random.get("network.loss")
        self.nodes: dict[str, Node] = {}
        self.nics: dict[str, Nic] = {}
        # Per-destination (node, nic, node.deliver) triples: one dict lookup
        # on the delivery hot path instead of two plus a bound-method
        # allocation. Maintained by add_node.
        self._endpoints: dict[str, tuple[Node, Nic, Callable[..., None]]] = {}
        self._groups: dict[str, list[str]] = {}
        self.messages_dropped = 0
        self.probe = None  # ProbeBus | None
        if _network_observers:
            for registration in list(_network_observers):
                registration.callback(self)

    @property
    def loss(self) -> LossModel:
        """The loss model applied per receiver leg (assignable mid-run)."""
        return self._loss

    @loss.setter
    def loss(self, model: LossModel) -> None:
        self._loss = model
        # NoLoss never consumes the RNG, so the hot paths may skip the
        # should_drop call entirely without changing any random draw.
        self._lossless = type(model) is NoLoss

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_probe(self, bus) -> None:
        """Publish transmissions and per-resource busy intervals to ``bus``.

        Attaches the bus to every NIC queue, CPU, and disk of nodes already
        on the fabric; nodes added later are instrumented by ``add_node``.
        """
        self.probe = bus
        for name in self.nodes:
            self._instrument(name)

    def _instrument(self, name: str) -> None:
        nic = self.nics[name]
        nic.egress.probe = self.probe
        nic.ingress.probe = self.probe
        node = self.nodes[name]
        node.cpu.probe = self.probe
        if node.disk is not None:
            node.disk.attach_probe(self.probe)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, node: Node, bandwidth: float | None = None) -> Node:
        """Attach ``node`` to the switch with its own NIC."""
        if node.name in self.nodes:
            raise NetworkError(f"node {node.name!r} already attached")
        self.nodes[node.name] = node
        nic = Nic(
            self.sim, node.name, bandwidth if bandwidth is not None else self.default_bandwidth
        )
        self.nics[node.name] = nic
        self._endpoints[node.name] = (node, nic, node.deliver)
        if self.probe is not None:
            self._instrument(node.name)
        return node

    def node(self, name: str) -> Node:
        """Look up an attached node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def nic(self, name: str) -> Nic:
        """Look up a node's NIC by node name."""
        try:
            return self.nics[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    # ------------------------------------------------------------------
    # Multicast groups
    # ------------------------------------------------------------------
    def join(self, group: str, node_name: str) -> None:
        """Subscribe ``node_name`` to multicast ``group`` (idempotent)."""
        if node_name not in self.nodes:
            raise NetworkError(f"unknown node {node_name!r}")
        members = self._groups.setdefault(group, [])
        if node_name not in members:
            members.append(node_name)

    def leave(self, group: str, node_name: str) -> None:
        """Unsubscribe ``node_name`` from ``group`` (idempotent)."""
        members = self._groups.get(group, [])
        if node_name in members:
            members.remove(node_name)

    def members(self, group: str) -> list[str]:
        """Current subscribers of ``group`` (copy)."""
        return list(self._groups.get(group, []))

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, port: str, msg: Any, size: int) -> None:
        """Unicast ``msg`` (``size`` bytes) from ``src`` to ``dst``."""
        endpoints = self._endpoints
        endpoint = endpoints.get(src)
        if endpoint is None:
            raise NetworkError(f"unknown node {src!r}")
        if dst not in endpoints:
            raise NetworkError(f"unknown node {dst!r}")
        node, nic, _ = endpoint
        if not node.up:
            return  # a crashed machine transmits nothing
        depart = nic.egress.submit(float(size))
        nic.bytes_sent += size
        nic.messages_sent += 1
        if self.probe is not None and self.probe.wants("net.enqueue"):
            self.probe.emit(
                "net.enqueue", self.sim.now, src,
                dst=dst, port=port, msg=type(msg).__name__, size=size,
            )
        self._propagate(depart, nic, src, dst, port, msg, size)

    def multicast(self, src: str, group: str, port: str, msg: Any, size: int) -> None:
        """IP-multicast ``msg`` to every subscriber of ``group``.

        The sender serializes the frame once; the switch fans it out to
        each subscriber (including the sender itself if subscribed, with
        loopback skipping the physical ingress queue).

        The remote fan-out is *coalesced*: all surviving subscribers share
        one scheduled arrival event (:meth:`_fan_in`) that performs every
        ingress submission in membership order — one heap operation for
        the propagation leg instead of one per subscriber. Loss is still
        decided per receiver leg at send time, in membership order, so the
        random draw sequence is identical to per-subscriber scheduling;
        and because per-subscriber arrival events would carry consecutive
        sequence numbers at one instant, delivering them from a single
        event preserves the exact global event order.
        """
        self._require_known(src)
        if not self.nodes[src].up:
            return
        members = self._groups.get(group, [])
        if not members:
            return
        sim = self.sim
        nic = self.nics[src]
        depart = nic.egress.submit(float(size))
        nic.bytes_sent += size
        nic.messages_sent += 1
        probe = self.probe
        if probe is not None and probe.wants("net.enqueue"):
            probe.emit(
                "net.enqueue", sim.now, src,
                group=group, fanout=len(members), port=port,
                msg=type(msg).__name__, size=size,
            )
        targets: list[str] = []
        if self._lossless:
            for dst in members:
                if dst == src:
                    # Kernel loopback: no switch hop, no ingress queue.
                    # Batched on the sender NIC's loopback strip — depart
                    # times share the egress FIFO, so they never decrease.
                    nic.tx_local.post_at(depart, self._deliver, dst, port, src, msg, 0)
                else:
                    targets.append(dst)
        else:
            rng = self._rng
            should_drop = self._loss.should_drop
            for dst in members:
                if dst == src:
                    nic.tx_local.post_at(depart, self._deliver, dst, port, src, msg, 0)
                elif should_drop(rng, src, dst, size):
                    self.messages_dropped += 1
                    if probe is not None and probe.wants("net.drop"):
                        probe.emit(
                            "net.drop", sim.now, src,
                            dst=dst, port=port, msg=type(msg).__name__, size=size,
                        )
                else:
                    targets.append(dst)
        if targets:
            # One switched-arrival event for the whole fan-out, riding the
            # sender NIC's strip of depart + propagation legs.
            nic.tx_remote.post_at(
                depart + self.propagation_delay,
                self._fan_in, targets, port, src, msg, size,
            )

    # ------------------------------------------------------------------
    # Internal plumbing
    # ------------------------------------------------------------------
    def _propagate(
        self, depart: float, nic: Nic, src: str, dst: str, port: str, msg: Any, size: int
    ) -> None:
        if not self._lossless and self._loss.should_drop(self._rng, src, dst, size):
            self.messages_dropped += 1
            if self.probe is not None and self.probe.wants("net.drop"):
                self.probe.emit(
                    "net.drop", self.sim.now, src,
                    dst=dst, port=port, msg=type(msg).__name__, size=size,
                )
            return
        arrival = depart + self.propagation_delay
        nic.tx_remote.post_at(arrival, self._deliver, dst, port, src, msg, size)

    def _fan_in(self, targets: list[str], port: str, src: str, msg: Any, size: int) -> None:
        # The coalesced multicast arrival: one event, every subscriber's
        # ingress submission, in membership order (see multicast()).
        deliver = self._deliver
        for dst in targets:
            deliver(dst, port, src, msg, size)

    def _deliver(self, dst: str, port: str, src: str, msg: Any, size: int) -> None:
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            return
        node, nic, dispatch = endpoint
        if not node.up:
            return
        probe = self.probe
        if probe is not None and probe.wants("net.deliver"):
            probe.emit(
                "net.deliver", self.sim.now, dst,
                src=src, port=port, msg=type(msg).__name__, size=size,
            )
        if size > 0:
            # The ingress queue schedules the dispatch itself, which
            # batches it on the receiving NIC's completion strip — a
            # multicast burst serializing here becomes one kernel event.
            # The seq draw happens inside submit, at the same point in
            # the draw sequence post_at used to make it.
            nic.ingress.submit(float(size), dispatch, port, src, msg)
            nic.bytes_received += size
            nic.messages_received += 1
        else:
            nic.messages_received += 1
            dispatch(port, src, msg)

    def _require_known(self, name: str) -> None:
        if name not in self.nodes:
            raise NetworkError(f"unknown node {name!r}")
