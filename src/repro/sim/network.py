"""Switched-Ethernet network model with unicast and IP multicast.

Models the paper's testbed fabric: servers on a non-blocking Gigabit
switch (HP ProCurve, 0.1 ms RTT). Each node has a full-duplex NIC; the
switch itself is non-blocking, so contention happens only at NIC egress
and ingress queues — which is the regime in which Ring Paxos's single
ip-multicast per value is cheap and a learner subscribing to many rings
eventually saturates its own ingress link (Figure 6).

Transmission of a message of ``size`` bytes from ``src`` to ``dst``:

1. serialize at ``src`` egress (FIFO at the NIC bandwidth),
2. propagate through the switch (fixed one-way delay),
3. serialize at ``dst`` ingress (FIFO at the NIC bandwidth),
4. hand to the destination :class:`~repro.sim.node.Node` port.

An ip-multicast pays step 1 **once** and steps 2-4 per subscriber: the
switch replicates the frame in hardware. That asymmetry is the entire
reason Ring Paxos out-throughputs sender-replicated protocols.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import NetworkError
from .loss import LossModel, NoLoss
from .node import Node
from .server import FifoServer
from .simulator import Simulator

__all__ = ["Nic", "Network", "observe_networks"]

# Observers notified whenever a Network is constructed — the counterpart of
# ``observe_simulators`` for the fabric layer. Empty by default.
_network_observers: list[Callable[["Network"], None]] = []


def observe_networks(callback: Callable[["Network"], None]) -> Callable[[], None]:
    """Call ``callback(network)`` for every Network created from now on.

    Returns a zero-argument remover that uninstalls the observer.
    """
    _network_observers.append(callback)

    def remove() -> None:
        if callback in _network_observers:
            _network_observers.remove(callback)

    return remove


class Nic:
    """Full-duplex network interface: an egress and an ingress queue."""

    def __init__(self, sim: Simulator, name: str, bandwidth: float) -> None:
        self.name = name
        self.bandwidth = bandwidth
        self.egress = FifoServer(sim, rate=bandwidth, name=f"{name}.tx")
        self.ingress = FifoServer(sim, rate=bandwidth, name=f"{name}.rx")
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0

    def ingress_utilization(self, window: float = 1.0) -> float:
        """Fraction of the last ``window`` seconds the receive link was busy."""
        return self.ingress.utilization(window)

    def egress_utilization(self, window: float = 1.0) -> float:
        """Fraction of the last ``window`` seconds the transmit link was busy."""
        return self.egress.utilization(window)


class Network:
    """The cluster fabric: nodes, their NICs, and multicast groups.

    Parameters
    ----------
    propagation_delay:
        One-way switch latency in seconds (default 50 us, i.e. the paper's
        0.1 ms RTT).
    bandwidth:
        Default NIC bandwidth in bytes per second (default 1 Gbps).
    loss:
        A :class:`~repro.sim.loss.LossModel`; losses are evaluated
        independently per receiver leg.
    """

    def __init__(
        self,
        sim: Simulator,
        propagation_delay: float = 50e-6,
        bandwidth: float = 1e9 / 8,
        loss: LossModel | None = None,
    ) -> None:
        self.sim = sim
        self.propagation_delay = propagation_delay
        self.default_bandwidth = bandwidth
        self.loss = loss if loss is not None else NoLoss()
        self._rng = sim.random.get("network.loss")
        self.nodes: dict[str, Node] = {}
        self.nics: dict[str, Nic] = {}
        self._groups: dict[str, list[str]] = {}
        self.messages_dropped = 0
        self.probe = None  # ProbeBus | None
        if _network_observers:
            for callback in list(_network_observers):
                callback(self)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_probe(self, bus) -> None:
        """Publish transmissions and per-resource busy intervals to ``bus``.

        Attaches the bus to every NIC queue, CPU, and disk of nodes already
        on the fabric; nodes added later are instrumented by ``add_node``.
        """
        self.probe = bus
        for name in self.nodes:
            self._instrument(name)

    def _instrument(self, name: str) -> None:
        nic = self.nics[name]
        nic.egress.probe = self.probe
        nic.ingress.probe = self.probe
        node = self.nodes[name]
        node.cpu.probe = self.probe
        if node.disk is not None:
            node.disk.attach_probe(self.probe)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, node: Node, bandwidth: float | None = None) -> Node:
        """Attach ``node`` to the switch with its own NIC."""
        if node.name in self.nodes:
            raise NetworkError(f"node {node.name!r} already attached")
        self.nodes[node.name] = node
        self.nics[node.name] = Nic(
            self.sim, node.name, bandwidth if bandwidth is not None else self.default_bandwidth
        )
        if self.probe is not None:
            self._instrument(node.name)
        return node

    def node(self, name: str) -> Node:
        """Look up an attached node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def nic(self, name: str) -> Nic:
        """Look up a node's NIC by node name."""
        try:
            return self.nics[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    # ------------------------------------------------------------------
    # Multicast groups
    # ------------------------------------------------------------------
    def join(self, group: str, node_name: str) -> None:
        """Subscribe ``node_name`` to multicast ``group`` (idempotent)."""
        if node_name not in self.nodes:
            raise NetworkError(f"unknown node {node_name!r}")
        members = self._groups.setdefault(group, [])
        if node_name not in members:
            members.append(node_name)

    def leave(self, group: str, node_name: str) -> None:
        """Unsubscribe ``node_name`` from ``group`` (idempotent)."""
        members = self._groups.get(group, [])
        if node_name in members:
            members.remove(node_name)

    def members(self, group: str) -> list[str]:
        """Current subscribers of ``group`` (copy)."""
        return list(self._groups.get(group, []))

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, port: str, msg: Any, size: int) -> None:
        """Unicast ``msg`` (``size`` bytes) from ``src`` to ``dst``."""
        self._require_known(src)
        self._require_known(dst)
        if not self.nodes[src].up:
            return  # a crashed machine transmits nothing
        depart = self.nics[src].egress.submit(float(size))
        self.nics[src].bytes_sent += size
        self.nics[src].messages_sent += 1
        if self.probe is not None and self.probe.wants("net.enqueue"):
            self.probe.emit(
                "net.enqueue", self.sim.now, src,
                dst=dst, port=port, msg=type(msg).__name__, size=size,
            )
        self._propagate(depart, src, dst, port, msg, size)

    def multicast(self, src: str, group: str, port: str, msg: Any, size: int) -> None:
        """IP-multicast ``msg`` to every subscriber of ``group``.

        The sender serializes the frame once; the switch fans it out to
        each subscriber (including the sender itself if subscribed, with
        loopback skipping the physical ingress queue).
        """
        self._require_known(src)
        if not self.nodes[src].up:
            return
        members = self._groups.get(group, [])
        if not members:
            return
        depart = self.nics[src].egress.submit(float(size))
        self.nics[src].bytes_sent += size
        self.nics[src].messages_sent += 1
        if self.probe is not None and self.probe.wants("net.enqueue"):
            self.probe.emit(
                "net.enqueue", self.sim.now, src,
                group=group, fanout=len(members), port=port,
                msg=type(msg).__name__, size=size,
            )
        for dst in members:
            if dst == src:
                # Kernel loopback: no switch hop, no ingress serialization.
                self.sim.at(depart, self._deliver, dst, port, src, msg, 0)
            else:
                self._propagate(depart, src, dst, port, msg, size)

    # ------------------------------------------------------------------
    # Internal plumbing
    # ------------------------------------------------------------------
    def _propagate(self, depart: float, src: str, dst: str, port: str, msg: Any, size: int) -> None:
        if self.loss.should_drop(self._rng, src, dst, size):
            self.messages_dropped += 1
            if self.probe is not None and self.probe.wants("net.drop"):
                self.probe.emit(
                    "net.drop", self.sim.now, src,
                    dst=dst, port=port, msg=type(msg).__name__, size=size,
                )
            return
        arrival = depart + self.propagation_delay
        self.sim.at(arrival, self._deliver, dst, port, src, msg, size)

    def _deliver(self, dst: str, port: str, src: str, msg: Any, size: int) -> None:
        node = self.nodes.get(dst)
        if node is None or not node.up:
            return
        if self.probe is not None and self.probe.wants("net.deliver"):
            self.probe.emit(
                "net.deliver", self.sim.now, dst,
                src=src, port=port, msg=type(msg).__name__, size=size,
            )
        nic = self.nics[dst]
        if size > 0:
            done = nic.ingress.submit(float(size))
            nic.bytes_received += size
            nic.messages_received += 1
            self.sim.at(done, node.deliver, port, src, msg)
        else:
            nic.messages_received += 1
            node.deliver(port, src, msg)

    def _require_known(self, name: str) -> None:
        if name not in self.nodes:
            raise NetworkError(f"unknown node {name!r}")
