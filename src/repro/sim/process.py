"""Actor and timer conveniences built on the simulation kernel.

Protocol roles (coordinators, acceptors, learners, clients) are written as
event-driven actors: subclasses of :class:`Process` that react to message
and timer callbacks. :class:`Timer` wraps the schedule/cancel/restart dance
that periodic protocol tasks (batch timeouts, skip-interval sampling,
failure detection) all need.
"""

from __future__ import annotations

from typing import Any, Callable

from .events import Event
from .simulator import Simulator

__all__ = ["Process", "Timer", "PeriodicTimer"]


class Process:
    """Base class for simulated actors.

    A process has a reference to the simulator and a name used in traces
    and metrics. It offers ``call_later`` sugar over ``sim.schedule``.
    Crash semantics: once :meth:`crash` is called, scheduled callbacks
    wrapped through ``call_later`` become no-ops; :meth:`restart` re-enables
    them. Subclasses that hold timers should override :meth:`on_crash` to
    stop them.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.crashed = False

    def call_later(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay``; suppressed if crashed."""
        return self.sim.schedule(delay, self._guarded, fn, args)

    def _guarded(self, fn: Callable[..., None], args: tuple[Any, ...]) -> None:
        if not self.crashed:
            fn(*args)

    def crash(self) -> None:
        """Crash the process: pending and future guarded callbacks no-op."""
        if not self.crashed:
            self.crashed = True
            self.on_crash()

    def restart(self) -> None:
        """Bring the process back; subclasses re-arm timers in on_restart."""
        if self.crashed:
            self.crashed = False
            self.on_restart()

    def on_crash(self) -> None:  # pragma: no cover - default is a no-op hook
        """Hook invoked when the process crashes."""

    def on_restart(self) -> None:  # pragma: no cover - default is a no-op hook
        """Hook invoked when the process restarts."""

    def __repr__(self) -> str:
        status = "crashed" if self.crashed else "up"
        return f"<{type(self).__name__} {self.name} ({status})>"


class Timer:
    """A restartable one-shot timer.

    >>> sim = Simulator()
    >>> fired = []
    >>> t = Timer(sim, 0.5, lambda: fired.append(sim.now))
    >>> t.start(); sim.run(until=1.0); fired
    [0.5]
    """

    def __init__(self, sim: Simulator, delay: float, fn: Callable[[], None]) -> None:
        self.sim = sim
        self.delay = delay
        self.fn = fn
        self._event: Event | None = None

    @property
    def armed(self) -> bool:
        """Whether the timer is currently scheduled to fire."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float | None = None) -> None:
        """Arm the timer (restarting it if already armed)."""
        self.stop()
        self._event = self.sim.schedule(self.delay if delay is None else delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer if armed (idempotent)."""
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self.fn()


class PeriodicTimer:
    """A timer that re-arms itself every ``period`` until stopped.

    The callback runs at ``start_time + k * period`` for k = 1, 2, ... —
    drift-free, because each firing is scheduled from the previous ideal
    firing time rather than from "now".
    """

    def __init__(self, sim: Simulator, period: float, fn: Callable[[], None]) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.period = period
        self.fn = fn
        self._event: Event | None = None
        self._next_time = 0.0

    @property
    def running(self) -> bool:
        """Whether the periodic timer is active."""
        return self._event is not None

    def start(self) -> None:
        """Begin firing every ``period`` seconds from now."""
        self.stop()
        self._next_time = self.sim.now + self.period
        self._event = self.sim.at(self._next_time, self._fire)

    def stop(self) -> None:
        """Stop firing (idempotent)."""
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self._next_time += self.period
        self._event = self.sim.at(self._next_time, self._fire)
        self.fn()
