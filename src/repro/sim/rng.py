"""Seeded, named random streams for deterministic simulations.

Every stochastic component (network loss, workload inter-arrival jitter,
failure injection...) draws from its own named stream so that adding a new
consumer of randomness does not perturb the draws seen by existing
components. Stream seeds are derived from the master seed and the stream
name with a stable hash, so runs are reproducible across processes and
Python versions (``hash()`` is salted per-process and must not be used).
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RandomStreams"]


def _derive_seed(master_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independent, reproducibly seeded ``random.Random``.

    >>> streams = RandomStreams(seed=42)
    >>> loss = streams.get("network.loss")
    >>> jitter = streams.get("workload.jitter")

    Requesting the same name twice returns the same generator instance.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the generator for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(_derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """Return a child factory whose streams are namespaced by ``name``."""
        return RandomStreams(_derive_seed(self.seed, f"fork:{name}"))
