"""Disk model for Recoverable (durable) acceptors.

The paper's Recoverable Ring Paxos writes every consensus decision to the
acceptors' disks using *buffered* writes (Section VI-A): the write syscall
returns quickly while the OS drains the buffer at the disk's sustained
bandwidth. Throughput is therefore bounded by the drain rate (~400 Mbps
per acceptor in Figure 1) even though individual write latency stays low —
until the buffer fills, at which point writes block on free space.

:class:`Disk` reproduces exactly that: a FIFO drain at ``bandwidth``
bytes/second fed through a bounded buffer. ``write(nbytes)`` completes (the
"ack") when the data has entered the buffer, which is immediate while there
is space and delayed by the drain otherwise.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import SimulationError
from .completion import CompletionStrip
from .server import FifoServer
from .simulator import Simulator

__all__ = ["Disk"]


class Disk:
    """Bandwidth-limited disk with a bounded write buffer.

    Parameters
    ----------
    bandwidth:
        Sustained drain rate in bytes per simulated second.
    buffer_bytes:
        Capacity of the OS write buffer. Writes that find the buffer full
        are admitted only once enough earlier data has drained.
    write_latency:
        Fixed per-write overhead (syscall + controller), charged on top of
        any wait for buffer space.
    """

    __slots__ = (
        "sim", "bandwidth", "buffer_bytes", "write_latency", "name",
        "bytes_written", "writes", "_drain", "_acks",
    )

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        buffer_bytes: int = 4 * 1024 * 1024,
        write_latency: float = 50e-6,
        name: str = "disk",
        history_window: float = 30.0,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("disk bandwidth must be positive")
        if buffer_bytes <= 0:
            raise ValueError("buffer size must be positive")
        self.sim = sim
        self.bandwidth = bandwidth
        self.buffer_bytes = buffer_bytes
        self.write_latency = write_latency
        self.name = name
        self.bytes_written = 0
        self.writes = 0
        self._drain = FifoServer(
            sim, rate=bandwidth, name=f"{name}.drain", history_window=history_window
        )
        # Ack callbacks are batched per disk: ack times never decrease
        # (ack = max(now, drained_at - buffer_time) + write_latency, and
        # both arguments of the max are non-decreasing), so a burst of
        # buffered writes coalesces into one drain tick on the calendar.
        self._acks = CompletionStrip(sim)

    def write(self, nbytes: int, fn: Callable[..., None] | None = None, *args: Any) -> float:
        """Buffered write of ``nbytes``; returns the ack (buffered) time.

        The ack time is when the caller may proceed (data safely in the
        buffer). The data itself reaches the platter when the drain queue
        flushes it; durability in this model means "accepted by the storage
        stack", matching the paper's buffered-write setup which assumes a
        majority of acceptors stays operational.
        """
        if nbytes < 0:
            raise SimulationError("cannot write a negative number of bytes")
        drained_at = self._drain.submit(float(nbytes))
        # The buffer holds whatever has been admitted but not yet drained.
        # A write is admitted when the buffer has room for it, i.e. when
        # everything that must drain to make room has drained:
        backlog_after = drained_at - self.sim.now
        overflow_bytes = backlog_after * self.bandwidth - self.buffer_bytes
        wait_for_space = max(0.0, overflow_bytes / self.bandwidth)
        ack_time = self.sim.now + wait_for_space + self.write_latency
        self.bytes_written += nbytes
        self.writes += 1
        if fn is not None:
            self._acks.post_at(ack_time, fn, *args)
        return ack_time

    @property
    def backlog_bytes(self) -> float:
        """Bytes admitted but not yet drained to the platter."""
        return self._drain.backlog_time * self.bandwidth

    def attach_probe(self, bus) -> None:
        """Publish the drain's busy intervals (``server.busy``) to ``bus``."""
        self._drain.probe = bus

    @property
    def drain(self) -> FifoServer:
        """The underlying drain server (for profiling/busy accounting)."""
        return self._drain

    def utilization(self, window: float = 1.0) -> float:
        """Fraction of the last ``window`` seconds the drain was busy."""
        return self._drain.utilization(window)

    def busy_between(self, start: float, end: float) -> float:
        """Busy drain seconds in ``[start, end]`` (for figure CPU/IO bars)."""
        return self._drain.busy_between(start, end)
