"""A generic FIFO work-conserving server with busy-interval accounting.

CPUs, disks and NICs in this simulator are all instances of the same
queueing abstraction: jobs arrive with a service demand, are served one at
a time in arrival order at a fixed rate, and the server records the busy
intervals so that utilization over any time window can be computed exactly.
Saturation behaviour — the latency knees and throughput ceilings that the
paper's evaluation is about — emerges from these queues rather than being
scripted.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from .simulator import Simulator

__all__ = ["FifoServer"]


class FifoServer:
    """Single FIFO queue + server at a fixed service rate.

    Because simulated event handlers execute in zero simulated time, the
    queue can be represented by a single scalar: ``busy_until``, the time
    at which all currently accepted work completes. A job submitted at
    ``t`` with demand ``d`` starts at ``max(t, busy_until)`` and completes
    ``d / rate`` later.

    Busy intervals are retained (bounded by ``history_window``) so callers
    can ask "how busy were you between a and b?" — which is how coordinator
    CPU percentages in the figures are measured.
    """

    def __init__(
        self,
        sim: Simulator,
        rate: float,
        name: str = "server",
        history_window: float = 30.0,
    ) -> None:
        if rate <= 0:
            raise ValueError("service rate must be positive")
        self.sim = sim
        self.rate = rate
        self.name = name
        self.history_window = history_window
        self.busy_until = 0.0
        self.total_busy_time = 0.0
        self.jobs_served = 0
        self.demand_served = 0.0
        self.probe = None  # ProbeBus | None; set by the observability layer
        self._intervals: deque[tuple[float, float]] = deque()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, demand: float, fn: Callable[..., None] | None = None, *args: Any) -> float:
        """Enqueue a job with ``demand`` units of work; returns finish time.

        If ``fn`` is given it is scheduled to run at the finish time. The
        finish time is also returned so callers that only need the value
        (e.g. to chain resources) can skip the callback.
        """
        if demand < 0:
            raise ValueError("demand must be non-negative")
        start = max(self.sim.now, self.busy_until)
        service_time = demand / self.rate
        finish = start + service_time
        self.busy_until = finish
        self.total_busy_time += service_time
        self.jobs_served += 1
        self.demand_served += demand
        self._record_interval(start, finish)
        if self.probe is not None and self.probe.wants("server.busy"):
            self.probe.emit(
                "server.busy", self.sim.now, self.name,
                start=start, finish=finish, demand=demand,
            )
        if fn is not None:
            self.sim.at(finish, fn, *args)
        return finish

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backlog_time(self) -> float:
        """Seconds of queued work not yet completed (0 when idle)."""
        return max(0.0, self.busy_until - self.sim.now)

    def busy_between(self, start: float, end: float) -> float:
        """Exact busy seconds within the window ``[start, end]``.

        Includes work already accepted that extends into the future of the
        simulated clock (the server is non-preemptive and work-conserving,
        so accepted work deterministically occupies those intervals).
        """
        if end <= start:
            return 0.0
        busy = 0.0
        for lo, hi in self._intervals:
            if hi <= start:
                continue
            if lo >= end:
                break
            busy += min(hi, end) - max(lo, start)
        return busy

    def utilization(self, window: float = 1.0) -> float:
        """Fraction of the last ``window`` seconds the server was busy."""
        if window <= 0:
            raise ValueError("window must be positive")
        end = self.sim.now
        start = max(0.0, end - window)
        if end == start:
            return 0.0
        return self.busy_between(start, end) / (end - start)

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    def _record_interval(self, start: float, finish: float) -> None:
        # Merge with the previous interval when the server never went idle;
        # this keeps the history short under sustained load.
        if self._intervals and self._intervals[-1][1] >= start:
            prev_lo, _ = self._intervals[-1]
            self._intervals[-1] = (prev_lo, finish)
        else:
            self._intervals.append((start, finish))
        horizon = self.sim.now - self.history_window
        while len(self._intervals) > 1 and self._intervals[0][1] < horizon:
            self._intervals.popleft()
