"""A generic FIFO work-conserving server with busy-interval accounting.

CPUs, disks and NICs in this simulator are all instances of the same
queueing abstraction: jobs arrive with a service demand, are served one at
a time in arrival order at a fixed rate, and the server records the busy
intervals so that utilization over any time window can be computed exactly.
Saturation behaviour — the latency knees and throughput ceilings that the
paper's evaluation is about — emerges from these queues rather than being
scripted.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable

from .completion import CompletionStrip
from .simulator import Simulator

__all__ = ["FifoServer"]

# Trim the interval history in batches once it grows past this many
# entries: one O(k) list deletion every few hundred submissions instead
# of a per-submission check (amortized O(1) either way, but off the
# common path).
_TRIM_THRESHOLD = 512


class FifoServer:
    """Single FIFO queue + server at a fixed service rate.

    Because simulated event handlers execute in zero simulated time, the
    queue can be represented by a single scalar: ``busy_until``, the time
    at which all currently accepted work completes. A job submitted at
    ``t`` with demand ``d`` starts at ``max(t, busy_until)`` and completes
    ``d / rate`` later.

    Busy intervals are retained (bounded by ``history_window``) so callers
    can ask "how busy were you between a and b?" — which is how coordinator
    CPU percentages in the figures are measured.
    """

    __slots__ = (
        "sim", "rate", "name", "history_window", "busy_until",
        "total_busy_time", "jobs_served", "demand_served", "probe",
        "_starts", "_ends", "_trim_at", "_completions",
    )

    def __init__(
        self,
        sim: Simulator,
        rate: float,
        name: str = "server",
        history_window: float = 30.0,
    ) -> None:
        if rate <= 0:
            raise ValueError("service rate must be positive")
        self.sim = sim
        self.rate = rate
        self.name = name
        self.history_window = history_window
        self.busy_until = 0.0
        self.total_busy_time = 0.0
        self.jobs_served = 0
        self.demand_served = 0.0
        self.probe = None  # ProbeBus | None; set by the observability layer
        # Disjoint busy intervals, sorted, stored as parallel flat lists
        # (starts / ends): the submission hot path then appends or mutates
        # one float instead of allocating a tuple, and busy_between can
        # bisect the start list directly. Both lists are non-decreasing.
        self._starts: list[float] = []
        self._ends: list[float] = []
        self._trim_at = _TRIM_THRESHOLD  # next history length to trim at
        # Completion callbacks ride one armed kernel event per server
        # instead of one per job (see completion.py); FIFO order is
        # guaranteed here because finish times never decrease.
        self._completions = CompletionStrip(sim)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, demand: float, fn: Callable[..., None] | None = None, *args: Any) -> float:
        """Enqueue a job with ``demand`` units of work; returns finish time.

        If ``fn`` is given it is scheduled to run at the finish time. The
        finish time is also returned so callers that only need the value
        (e.g. to chain resources) can skip the callback.
        """
        if demand < 0:
            raise ValueError("demand must be non-negative")
        now = self.sim.now
        busy_until = self.busy_until
        start = busy_until if busy_until > now else now
        service_time = demand / self.rate
        finish = start + service_time
        self.busy_until = finish
        self.total_busy_time += service_time
        self.jobs_served += 1
        self.demand_served += demand
        # Interval recording, inlined (this is the per-message hot path of
        # every NIC/CPU/disk): merge with the previous interval when the
        # server never went idle, trim old history only in batches.
        ends = self._ends
        if ends and ends[-1] >= start:
            ends[-1] = finish
        else:
            self._starts.append(start)
            ends.append(finish)
            if len(ends) > self._trim_at:
                self._trim(now)
        probe = self.probe
        if probe is not None and probe.wants("server.busy"):
            probe.emit(
                "server.busy", now, self.name,
                start=start, finish=finish, demand=demand,
            )
        if fn is not None:
            # Completions are fire-and-forget and FIFO (finish >= every
            # earlier finish: it starts at busy_until), so they ride the
            # server's completion strip: the kernel seq is reserved here —
            # the same draw post_at would have made — but only the strip's
            # head occupies the calendar. CompletionStrip.post_at inlined
            # (this is the per-message hot path of every NIC/CPU/disk).
            strip = self._completions
            sim = self.sim
            seq = next(sim._seq)
            strip._pending.append((finish, seq, fn, args))
            if not strip._armed:
                strip._armed = True
                sim._queue._push_entry((finish, seq, strip._sweep, (), None))
        return finish

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backlog_time(self) -> float:
        """Seconds of queued work not yet completed (0 when idle)."""
        return max(0.0, self.busy_until - self.sim.now)

    def busy_between(self, start: float, end: float) -> float:
        """Exact busy seconds within the window ``[start, end]``.

        Includes work already accepted that extends into the future of the
        simulated clock (the server is non-preemptive and work-conserving,
        so accepted work deterministically occupies those intervals).
        """
        if end <= start:
            return 0.0
        starts = self._starts
        ends = self._ends
        # Intervals are disjoint and sorted, so bisect to the first one
        # that can overlap the window instead of scanning the whole
        # history: the one before the first interval opening after start.
        i = bisect_right(starts, start) - 1
        if i < 0:
            i = 0
        busy = 0.0
        n = len(starts)
        while i < n:
            lo = starts[i]
            if lo >= end:
                break
            hi = ends[i]
            if hi > start:
                busy += min(hi, end) - max(lo, start)
            i += 1
        return busy

    def utilization(self, window: float = 1.0) -> float:
        """Fraction of the last ``window`` seconds the server was busy."""
        if window <= 0:
            raise ValueError("window must be positive")
        end = self.sim.now
        start = max(0.0, end - window)
        if end == start:
            return 0.0
        return self.busy_between(start, end) / (end - start)

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    @property
    def _intervals(self) -> list[tuple[float, float]]:
        # Introspection/test view of the flat start/end lists.
        return list(zip(self._starts, self._ends))

    def _trim(self, now: float) -> None:
        # Drop intervals that ended before the history horizon in one list
        # deletion, always keeping at least the most recent interval.
        # Interval ends are non-decreasing, so bisect on them directly.
        ends = self._ends
        horizon = now - self.history_window
        cut = bisect_left(ends, horizon)
        if cut >= len(ends):
            cut = len(ends) - 1
        if cut > 0:
            del self._starts[:cut]
            del ends[:cut]
        # When everything is still inside the window (short simulations
        # never age out of a 30 s history), back off instead of re-running
        # a futile trim on every append.
        self._trim_at = max(_TRIM_THRESHOLD, 2 * len(ends))
