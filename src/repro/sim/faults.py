"""Declarative fault injection: crashes, restarts, and network partitions.

Failure experiments read better as schedules than as ad-hoc callbacks::

    faults = FaultSchedule(sim)
    faults.crash_at(20.0, node, process)
    faults.restart_at(23.0, node, process)

    partition = NetworkPartition({"a", "b"})   # isolate {a, b} from the rest
    net.loss = partition
    faults.partition_at(5.0, partition)
    faults.heal_at(8.0, partition)

Partitions are modelled in the loss layer: while active, any message
crossing the cut is dropped. Protocols recover through their normal
retransmission/repair paths — nothing is notified explicitly, exactly as
on a real network.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable

from .loss import LossModel, NoLoss, TunableLoss
from .simulator import Simulator

__all__ = ["NetworkPartition", "FaultSchedule"]


class NetworkPartition:
    """A two-sided cut: messages between ``island`` and the rest drop.

    Inactive by default; toggle with :meth:`activate` / :meth:`heal`.
    Composes with another loss model (applied when the partition lets the
    message through).
    """

    def __init__(self, island: Iterable[str], underlying: LossModel | None = None) -> None:
        self.island = set(island)
        self.underlying = underlying if underlying is not None else NoLoss()
        self.active = False
        self.dropped = 0

    def activate(self) -> None:
        """Start dropping messages that cross the cut."""
        self.active = True

    def heal(self) -> None:
        """Stop dropping (the network is whole again)."""
        self.active = False

    def should_drop(self, rng: random.Random, src: str, dst: str, size: int) -> bool:
        if self.active and ((src in self.island) != (dst in self.island)):
            self.dropped += 1
            return True
        return self.underlying.should_drop(rng, src, dst, size)


class FaultSchedule:
    """Schedules crashes, restarts, and partition toggles on the timeline.

    ``crash_at``/``restart_at`` accept any mix of objects exposing
    ``crash()``/``restart()`` — simulated :class:`~repro.sim.node.Node`
    machines and protocol :class:`~repro.sim.process.Process` roles alike.
    For a machine-level failure pass both the node and its processes, like
    ``MultiRingPaxos.crash_coordinator`` does.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.events: list[tuple[float, str, object]] = []

    def crash_at(self, time: float, *targets: object) -> "FaultSchedule":
        """Crash every target at ``time``; returns self for chaining."""
        for target in targets:
            self.events.append((time, "crash", target))
            self.sim.at(time, target.crash)  # type: ignore[attr-defined]
        return self

    def restart_at(self, time: float, *targets: object) -> "FaultSchedule":
        """Restart every target at ``time``; returns self for chaining."""
        for target in targets:
            self.events.append((time, "restart", target))
            self.sim.at(time, target.restart)  # type: ignore[attr-defined]
        return self

    def partition_at(self, time: float, partition: NetworkPartition) -> "FaultSchedule":
        """Activate ``partition`` at ``time``."""
        self.events.append((time, "partition", partition))
        self.sim.at(time, partition.activate)
        return self

    def heal_at(self, time: float, partition: NetworkPartition) -> "FaultSchedule":
        """Heal ``partition`` at ``time``."""
        self.events.append((time, "heal", partition))
        self.sim.at(time, partition.heal)
        return self

    def repartition_at(
        self, time: float, partition: NetworkPartition, island: Iterable[str]
    ) -> "FaultSchedule":
        """Re-cut ``partition`` around a new ``island`` at ``time``.

        Lets one partition object model a sequence of different cuts (as
        generated fault schedules do): the island is swapped and the
        partition activated in the same event.
        """
        members = set(island)
        self.events.append((time, "partition", partition))

        def recut() -> None:
            partition.island = members
            partition.activate()

        self.sim.at(time, recut)
        return self

    def set_loss_at(self, time: float, loss: TunableLoss, p: float) -> "FaultSchedule":
        """Set ``loss``'s drop probability to ``p`` at ``time``.

        Schedules both edges of a loss phase: a positive ``p`` starts it,
        a later ``set_loss_at(..., 0.0)`` ends it.
        """
        self.events.append((time, f"loss p={p:g}", loss))
        self.sim.at(time, loss.set, p)
        return self

    def act_at(self, time: float, label: str, fn: Callable[..., None], *args: Any) -> "FaultSchedule":
        """Schedule an arbitrary fault action (slow-link/slow-disk phases).

        ``label`` is what :meth:`describe` prints; ``fn(*args)`` runs at
        ``time``. Generated schedules use this for phases that have no
        dedicated helper, keeping every injected fault on one timeline.
        """
        self.events.append((time, label, fn))
        self.sim.at(time, fn, *args)
        return self

    def describe(self) -> str:
        """A readable, time-ordered summary of the planned faults."""
        lines = []
        for time, kind, target in sorted(self.events, key=lambda e: e[0]):
            name = getattr(target, "name", type(target).__name__)
            lines.append(f"t={time:g}s {kind} {name}")
        return "\n".join(lines)
