"""Multi-datacenter topologies: per-region switches joined by WAN links.

The base :class:`~repro.sim.network.Network` models the paper's testbed —
every server on one non-blocking switch. "Stretching Multi-Ring Paxos"
deploys the same protocol across datacenters, which changes exactly one
thing about the fabric: a message between servers in *different* regions
must additionally cross a WAN link with its own one-way latency,
bandwidth, and jitter. Everything else — NIC egress/ingress contention,
the switch's fixed hop, per-receiver-leg loss — stays as it is.

:class:`Topology` is the static description (region names, per-region
switch delay, a :class:`WanLink` per region pair); :class:`GeoNetwork`
is the live fabric. Cross-region traffic serializes at the sender NIC,
crosses the local switch, then traverses the WAN link **once per
destination region** and fans out at the remote switch — so an
ip-multicast spanning three regions pays the sender's egress once and
each WAN link once, preserving the NIC-egress asymmetry that makes Ring
Paxos cheap.

A one-region :class:`GeoNetwork` is the degenerate case: every path takes
the base class's code with the same random draws in the same order, so
traces are byte-identical to a plain :class:`Network`. The golden-trace
suite pins that equivalence.

Jitter draws come from the dedicated ``network.wan`` stream of
:class:`~repro.sim.rng.RandomStreams`, so enabling jitter never perturbs
loss draws (and a jitter-free geo run draws nothing at all). Deliveries
over one link remain FIFO even under jitter — a jittered arrival is
clamped to the link's previous arrival time, modelling a single ordered
circuit rather than per-packet routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..errors import ConfigurationError, NetworkError
from .completion import CompletionStrip
from .loss import LossModel
from .network import Network
from .node import Node
from .server import FifoServer
from .simulator import Simulator

__all__ = ["WanLink", "Topology", "GeoNetwork"]


@dataclass(frozen=True, slots=True)
class WanLink:
    """Static description of one inter-region link (symmetric).

    Parameters
    ----------
    latency:
        One-way propagation delay in seconds (RTT / 2).
    bandwidth:
        Link capacity in bytes per second (default 1 Gbps, matching the
        NICs: the interesting WAN regime here is latency, not capacity).
    jitter:
        Maximum extra one-way delay in seconds; each crossing draws
        uniformly from ``[0, jitter]`` on the ``network.wan`` stream.
    """

    latency: float
    bandwidth: float = 1e9 / 8
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0 or self.jitter < 0:
            raise ConfigurationError("WAN latency and jitter must be non-negative")
        if self.bandwidth <= 0:
            raise ConfigurationError("WAN bandwidth must be positive")


class Topology:
    """Region names plus the WAN links joining them.

    Parameters
    ----------
    regions:
        Region names in declaration order. The order is meaningful: it is
        the deterministic tie-break used by latency-aware placement, and
        the first region is the default for nodes added without one.
    links:
        Mapping of unordered region pairs ``(a, b)`` to :class:`WanLink`.
        Pairs not listed fall back to the uniform ``wan_latency`` /
        ``wan_bandwidth`` / ``wan_jitter`` defaults.
    wan_latency:
        Default one-way latency for unlisted pairs. Required (directly or
        via ``links`` covering every pair) once there is more than one
        region.
    switch_delay:
        One-way delay of each region's local switch (the base model's
        ``propagation_delay``, default 50 us).
    """

    __slots__ = ("regions", "switch_delay", "_links")

    def __init__(
        self,
        regions: Iterable[str],
        links: Mapping[tuple[str, str], WanLink] | None = None,
        wan_latency: float | None = None,
        wan_bandwidth: float = 1e9 / 8,
        wan_jitter: float = 0.0,
        switch_delay: float = 50e-6,
    ) -> None:
        self.regions: tuple[str, ...] = tuple(regions)
        if not self.regions:
            raise ConfigurationError("a topology needs at least one region")
        if len(set(self.regions)) != len(self.regions):
            raise ConfigurationError("region names must be distinct")
        if switch_delay < 0:
            raise ConfigurationError("switch_delay must be non-negative")
        self.switch_delay = switch_delay
        known = set(self.regions)
        self._links: dict[tuple[str, str], WanLink] = {}
        for (a, b), link in (links or {}).items():
            if a not in known or b not in known:
                raise ConfigurationError(f"link ({a!r}, {b!r}) names an unknown region")
            if a == b:
                raise ConfigurationError(f"region {a!r} cannot link to itself")
            self._links[(a, b)] = link
            self._links[(b, a)] = link
        default = None
        if wan_latency is not None:
            default = WanLink(wan_latency, bandwidth=wan_bandwidth, jitter=wan_jitter)
        for i, a in enumerate(self.regions):
            for b in self.regions[i + 1:]:
                if (a, b) not in self._links:
                    if default is None:
                        raise ConfigurationError(
                            f"no WAN link between {a!r} and {b!r} "
                            "(give wan_latency or list the pair in links)"
                        )
                    self._links[(a, b)] = default
                    self._links[(b, a)] = default

    @classmethod
    def single(cls, region: str = "dc0", switch_delay: float = 50e-6) -> "Topology":
        """The degenerate one-region topology (the paper's single switch)."""
        return cls([region], switch_delay=switch_delay)

    @property
    def default_region(self) -> str:
        """Where nodes land when attached without an explicit region."""
        return self.regions[0]

    def link(self, a: str, b: str) -> WanLink:
        """The WAN link between two distinct regions."""
        try:
            return self._links[(a, b)]
        except KeyError:
            raise ConfigurationError(f"no WAN link between {a!r} and {b!r}") from None

    def one_way(self, a: str, b: str) -> float:
        """One-way WAN latency between regions (0 within a region)."""
        if a == b:
            if a not in self.regions:
                raise ConfigurationError(f"unknown region {a!r}")
            return 0.0
        return self.link(a, b).latency

    def rtt(self, a: str, b: str) -> float:
        """Round-trip WAN latency between regions (0 within a region)."""
        return 2.0 * self.one_way(a, b)


class _LiveLink:
    """Run-time state of one *direction* of a WAN link."""

    __slots__ = (
        "src_region", "dst_region", "latency", "jitter", "fifo", "strip",
        "last_arrival", "down", "messages_carried", "bytes_carried",
        "messages_dropped",
    )

    def __init__(self, sim: Simulator, src_region: str, dst_region: str, spec: WanLink) -> None:
        self.src_region = src_region
        self.dst_region = dst_region
        self.latency = spec.latency
        self.jitter = spec.jitter
        self.fifo = FifoServer(sim, rate=spec.bandwidth, name=f"wan.{src_region}->{dst_region}")
        self.strip = CompletionStrip(sim)
        self.last_arrival = 0.0
        self.down = False
        self.messages_carried = 0
        self.bytes_carried = 0
        self.messages_dropped = 0


class GeoNetwork(Network):
    """A multi-region fabric: one switch per region, WAN links between.

    Intra-region traffic takes the base class's paths unchanged (same
    code, same random draws); only a leg whose destination sits in a
    different region is routed over the region pair's WAN link. Loss is
    still decided per receiver leg at send time, in membership order, on
    the shared ``network.loss`` stream — link state (a partitioned WAN
    link) is evaluated at link-entry time, like a node's ``up`` flag.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        bandwidth: float = 1e9 / 8,
        loss: LossModel | None = None,
    ) -> None:
        super().__init__(
            sim,
            propagation_delay=topology.switch_delay,
            bandwidth=bandwidth,
            loss=loss,
        )
        self.topology = topology
        self.region_of: dict[str, str] = {}
        self.wan_jitter_scale = 1.0
        # Dedicated stream: jitter draws never perturb network.loss.
        self._wan_rng = sim.random.get("network.wan")
        self._wan: dict[tuple[str, str], _LiveLink] = {}
        for i, a in enumerate(topology.regions):
            for b in topology.regions[i + 1:]:
                spec = topology.link(a, b)
                self._wan[(a, b)] = _LiveLink(sim, a, b, spec)
                self._wan[(b, a)] = _LiveLink(sim, b, a, spec)
        if self.probe is not None:
            # A network-creation observer (e.g. an obs session) attaches
            # its probe during super().__init__, before the links exist.
            for link in self._wan.values():
                link.fifo.probe = self.probe

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(
        self, node: Node, bandwidth: float | None = None, region: str | None = None
    ) -> Node:
        """Attach ``node`` to its region's switch (default: first region)."""
        if region is None:
            region = self.topology.default_region
        elif region not in self.topology.regions:
            raise NetworkError(f"unknown region {region!r}")
        super().add_node(node, bandwidth)
        self.region_of[node.name] = region
        return node

    def nodes_in(self, region: str) -> list[str]:
        """Names of the nodes attached in ``region``, in attach order."""
        return [name for name, r in self.region_of.items() if r == region]

    def attach_probe(self, bus) -> None:
        super().attach_probe(bus)
        # Called mid-super().__init__ by creation observers, before the
        # link table exists; __init__ re-propagates the probe afterwards.
        for link in getattr(self, "_wan", {}).values():
            link.fifo.probe = bus

    # ------------------------------------------------------------------
    # WAN fault injection
    # ------------------------------------------------------------------
    def partition_wan(self, a: str, b: str) -> None:
        """Cut the WAN link between two regions (both directions)."""
        self._wan_pair(a, b)
        self._wan[(a, b)].down = True
        self._wan[(b, a)].down = True

    def heal_wan(self, a: str | None = None, b: str | None = None) -> None:
        """Restore one WAN link, or every link when called without args."""
        if a is None and b is None:
            for link in self._wan.values():
                link.down = False
            return
        assert a is not None and b is not None
        self._wan_pair(a, b)
        self._wan[(a, b)].down = False
        self._wan[(b, a)].down = False

    def set_wan_jitter_scale(self, factor: float) -> None:
        """Scale every link's jitter amplitude (1.0 = configured level)."""
        if factor < 0:
            raise ConfigurationError("jitter scale must be non-negative")
        self.wan_jitter_scale = float(factor)

    def wan_links_down(self) -> list[tuple[str, str]]:
        """Region pairs whose link is currently cut (each once, sorted)."""
        return sorted(
            (a, b) for (a, b), link in self._wan.items() if link.down and a < b
        )

    def _wan_pair(self, a: str, b: str) -> None:
        if (a, b) not in self._wan:
            raise NetworkError(f"no WAN link between {a!r} and {b!r}")

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, port: str, msg: Any, size: int) -> None:
        """Unicast; cross-region legs route over the WAN link."""
        endpoint = self._endpoints.get(src)
        if endpoint is None:
            raise NetworkError(f"unknown node {src!r}")
        if dst not in self._endpoints:
            raise NetworkError(f"unknown node {dst!r}")
        region_of = self.region_of
        dst_region = region_of[dst]
        if region_of[src] == dst_region:
            super().send(src, dst, port, msg, size)
            return
        node, nic, _ = endpoint
        if not node.up:
            return
        depart = nic.egress.submit(float(size))
        nic.bytes_sent += size
        nic.messages_sent += 1
        if self.probe is not None and self.probe.wants("net.enqueue"):
            self.probe.emit(
                "net.enqueue", self.sim.now, src,
                dst=dst, port=port, msg=type(msg).__name__, size=size,
            )
        if not self._lossless and self._loss.should_drop(self._rng, src, dst, size):
            self.messages_dropped += 1
            if self.probe is not None and self.probe.wants("net.drop"):
                self.probe.emit(
                    "net.drop", self.sim.now, src,
                    dst=dst, port=port, msg=type(msg).__name__, size=size,
                )
            return
        # Local switch hop first, then the WAN link once.
        self.sim.post_at(
            depart + self.propagation_delay,
            self._wan_entry, self._wan[(region_of[src], dst_region)],
            [dst], port, src, msg, size,
        )

    def multicast(self, src: str, group: str, port: str, msg: Any, size: int) -> None:
        """IP-multicast; each destination region's WAN link is crossed once.

        Same contract as the base class — sender serializes the frame
        once, loss decided per receiver leg in membership order — but
        survivors are bucketed by region: in-region subscribers share the
        base coalesced fan-in, and each remote region gets a single WAN
        crossing that fans out at the remote switch.
        """
        self._require_known(src)
        if not self.nodes[src].up:
            return
        members = self._groups.get(group, [])
        if not members:
            return
        sim = self.sim
        nic = self.nics[src]
        depart = nic.egress.submit(float(size))
        nic.bytes_sent += size
        nic.messages_sent += 1
        probe = self.probe
        if probe is not None and probe.wants("net.enqueue"):
            probe.emit(
                "net.enqueue", sim.now, src,
                group=group, fanout=len(members), port=port,
                msg=type(msg).__name__, size=size,
            )
        region_of = self.region_of
        src_region = region_of[src]
        local: list[str] = []
        remote: dict[str, list[str]] = {}
        if self._lossless:
            for dst in members:
                if dst == src:
                    nic.tx_local.post_at(depart, self._deliver, dst, port, src, msg, 0)
                elif region_of[dst] == src_region:
                    local.append(dst)
                else:
                    remote.setdefault(region_of[dst], []).append(dst)
        else:
            rng = self._rng
            should_drop = self._loss.should_drop
            for dst in members:
                if dst == src:
                    nic.tx_local.post_at(depart, self._deliver, dst, port, src, msg, 0)
                elif should_drop(rng, src, dst, size):
                    self.messages_dropped += 1
                    if probe is not None and probe.wants("net.drop"):
                        probe.emit(
                            "net.drop", sim.now, src,
                            dst=dst, port=port, msg=type(msg).__name__, size=size,
                        )
                elif region_of[dst] == src_region:
                    local.append(dst)
                else:
                    remote.setdefault(region_of[dst], []).append(dst)
        if local:
            nic.tx_remote.post_at(
                depart + self.propagation_delay,
                self._fan_in, local, port, src, msg, size,
            )
        if remote:
            # One WAN crossing per destination region (insertion order ==
            # first occurrence in membership order: deterministic).
            entry = depart + self.propagation_delay
            wan = self._wan
            for region, targets in remote.items():
                sim.post_at(
                    entry, self._wan_entry, wan[(src_region, region)],
                    targets, port, src, msg, size,
                )

    # ------------------------------------------------------------------
    # Internal plumbing
    # ------------------------------------------------------------------
    def _wan_entry(
        self, link: _LiveLink, targets: list[str], port: str, src: str, msg: Any, size: int
    ) -> None:
        """A frame reaching its WAN link: serialize, cross, fan out remote.

        Link state is sampled here (entry time), so a partition installed
        mid-flight drops frames already queued toward the link — the same
        semantics as a node crashing before its ingress dispatch. The
        arrival is clamped to the link's previous arrival, keeping
        deliveries over one link FIFO even under jitter.
        """
        if link.down:
            link.messages_dropped += len(targets)
            self.messages_dropped += len(targets)
            probe = self.probe
            if probe is not None and probe.wants("net.drop"):
                for dst in targets:
                    probe.emit(
                        "net.drop", self.sim.now, src,
                        dst=dst, port=port, msg=type(msg).__name__, size=size,
                    )
            return
        finish = link.fifo.submit(float(size))
        link.messages_carried += 1
        link.bytes_carried += size
        delay = link.latency
        jitter = link.jitter * self.wan_jitter_scale
        if jitter > 0.0:
            delay += self._wan_rng.uniform(0.0, jitter)
        arrival = finish + delay
        if arrival < link.last_arrival:
            arrival = link.last_arrival
        link.last_arrival = arrival
        link.strip.post_at(arrival, self._fan_in, targets, port, src, msg, size)
