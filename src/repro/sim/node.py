"""Simulated machines.

A :class:`Node` is one physical server of the paper's cluster: it owns a
CPU, optionally a disk (Recoverable acceptors), and a table of *ports* —
named mailboxes that protocol actors register handlers on. Ports are what
let several protocol roles (an acceptor of ring 0, a learner of rings 0
and 1, a client...) share one machine, exactly as the paper co-locates
roles on its 24 servers.
"""

from __future__ import annotations

from typing import Any, Callable

from .cpu import Cpu
from .disk import Disk
from .simulator import Simulator

__all__ = ["Node"]

Handler = Callable[[str, Any], None]


class Node:
    """One simulated server.

    Parameters
    ----------
    cpu_capacity:
        Processing-seconds per second (1.0 = one saturated core).
    disk_bandwidth:
        If given, the node gets a :class:`Disk` with this sustained
        bandwidth (bytes/second); otherwise ``node.disk`` is None.
    """

    __slots__ = ("sim", "name", "cpu", "disk", "up", "_handlers", "_dispatch")

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cpu_capacity: float = 1.0,
        disk_bandwidth: float | None = None,
        disk_buffer_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        self.sim = sim
        self.name = name
        self.cpu = Cpu(sim, capacity=cpu_capacity, name=f"{name}.cpu")
        self.disk: Disk | None = None
        if disk_bandwidth is not None:
            self.disk = Disk(
                sim,
                bandwidth=disk_bandwidth,
                buffer_bytes=disk_buffer_bytes,
                name=f"{name}.disk",
            )
        self.up = True
        self._handlers: dict[str, Handler] = {}
        # Cached bound dict.get: port dispatch runs once per delivered
        # message, and register/unregister mutate the dict in place so the
        # cached lookup never goes stale.
        self._dispatch = self._handlers.get

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------
    def register(self, port: str, handler: Handler) -> None:
        """Attach ``handler(src, msg)`` to ``port`` (replacing any previous)."""
        self._handlers[port] = handler

    def unregister(self, port: str) -> None:
        """Detach the handler on ``port`` if any (idempotent)."""
        self._handlers.pop(port, None)

    def deliver(self, port: str, src: str, msg: Any) -> None:
        """Dispatch an arriving message; silently dropped if down/unbound."""
        if not self.up:
            return
        handler = self._dispatch(port)
        if handler is not None:
            handler(src, msg)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Take the machine down: all arriving traffic is dropped."""
        self.up = False

    def restart(self) -> None:
        """Bring the machine back up (handlers stay registered)."""
        self.up = True

    def __repr__(self) -> str:
        status = "up" if self.up else "down"
        return f"<Node {self.name} ({status})>"
