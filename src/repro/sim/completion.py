"""Batched completion delivery for the resource models.

Every FIFO resource in the simulator (NIC queue, CPU, disk drain) hands
out completion times that are **non-decreasing**: jobs finish in the
order they were accepted. The kernel does not need one calendar entry
per completion to honour that — it needs one entry for the *earliest*
pending completion, and the rest can ride behind it.

:class:`CompletionStrip` exploits exactly this. Completions are appended
to a per-resource FIFO; only the head is *armed* as a real kernel event.
When the head fires, the sweep keeps draining the FIFO inline — clock
forwarded, probe mirrored, execution counter bumped — for as long as
each next completion still precedes whatever the kernel would fire next
(checked against the queue's exact ``(time, seq)`` frontier via
``peek_entry``) and stays inside an active ``run(until=...)`` window.
The first completion that doesn't, re-arms the strip and yields.

Determinism is bit-exact with one-event-per-completion scheduling:

* Each completion reserves its kernel sequence number at submit time —
  the same program point where ``post_at`` used to draw it — so the
  global ``(time, seq)`` order of callbacks is unchanged.
* A swept completion fires only when its ``(time, seq)`` key precedes
  the kernel's next entry, which is exactly when the kernel itself
  would have fired it.

What changes is the *cost*: a burst of same-resource completions (a
multicast fan-in serializing at one learner's ingress NIC, a batch of
disk acks) is one calendar push and one kernel dispatch instead of one
per message leg. ``Simulator.pending_events`` counts the armed head,
not the queued tail, and a ``max_events`` budget counts the dispatch,
not the swept riders (which still count in ``events_executed``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from .simulator import Simulator

__all__ = ["CompletionStrip"]


class CompletionStrip:
    """A FIFO of pending completions backed by one armed kernel event.

    The owning resource is expected to append completion times in
    non-decreasing order (``seq`` reservation keeps ties ordered by
    submission, matching the kernel's tie-breaker); stragglers that
    arrive out of order are scheduled as plain kernel events instead of
    joining the batch.
    """

    __slots__ = ("sim", "_pending", "_armed")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        # (time, seq, fn, args) in arrival order == (time, seq) order.
        self._pending: deque[tuple[float, int, Callable[..., None], tuple]] = deque()
        self._armed = False

    def __len__(self) -> int:
        return len(self._pending)

    def post_at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at ``time``; not cancellable.

        Same ordering semantics as ``Simulator.post_at`` (a kernel seq is
        reserved here and now), but only the strip's head occupies the
        calendar. An entry arriving out of FIFO order — possible when a
        fault schedule changes a delay parameter mid-run, e.g. the
        propagation component of a NIC's switched-leg times — skips the
        strip and lands on the calendar as its own event, which is
        bit-exact with unbatched scheduling.
        """
        sim = self.sim
        seq = next(sim._seq)
        pending = self._pending
        if pending and time < pending[-1][0]:
            sim._queue._push_entry((time, seq, fn, args, None))
            return
        pending.append((time, seq, fn, args))
        if not self._armed:
            self._armed = True
            sim._queue._push_entry((time, seq, self._sweep, (), None))

    def _sweep(self) -> None:
        """Kernel callback: fire the head, then drain what's due inline.

        ``_armed`` stays True for the whole sweep — a completion callback
        that submits more work to the same resource just appends to the
        FIFO; the tail is either swept below or re-armed at exit.
        """
        sim = self.sim
        pending = self._pending
        # The head IS the kernel event that just fired (same time/seq):
        # the dispatch loop has already advanced the clock, emitted the
        # probe record, and will count it.
        _time, _seq, fn, args = pending.popleft()
        if args:
            fn(*args)
        else:
            fn()
        queue = sim._queue
        while pending:
            head = pending[0]
            time = head[0]
            if sim._running:
                until = sim._run_until
                if until is None or time <= until:
                    nxt = queue.peek_entry()
                    if nxt is None or nxt[0] > time or (
                        nxt[0] == time and nxt[1] > head[1]
                    ):
                        # Nothing in the kernel precedes this completion:
                        # fire it inline, exactly as the kernel would.
                        pending.popleft()
                        sim.now = time
                        sim._events_executed += 1
                        probe = sim._probe
                        if probe is not None and probe.wants("sim.event"):
                            fn = head[2]
                            probe.emit(
                                "sim.event",
                                time,
                                getattr(fn, "__qualname__", None) or repr(fn),
                                seq=head[1],
                            )
                        args = head[3]
                        if args:
                            head[2](*args)
                        else:
                            head[2]()
                        continue
            # An earlier kernel event, the end of the run window, or
            # single-stepping: hand control back, keeping our slot.
            queue._push_entry((time, head[1], self._sweep, (), None))
            return
        self._armed = False
