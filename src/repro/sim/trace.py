"""Execution tracing for debugging simulated protocols.

A :class:`Tracer` records structured events — message sends, deliveries,
protocol state transitions — with their simulated timestamps, supports
filtering, and renders readable timelines. Attach one to a
:class:`~repro.sim.network.Network` with :func:`trace_network` to capture
every transmission without touching protocol code.

This is a debugging instrument: it is never active unless explicitly
installed, so it costs nothing in benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from .network import Network
from .simulator import Simulator

__all__ = ["TraceEvent", "Tracer", "trace_network"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded occurrence."""

    time: float
    category: str
    source: str
    detail: str
    data: Any = None

    def render(self) -> str:
        """One readable line: time, category, actor, detail."""
        return f"{self.time * 1e3:10.3f}ms  {self.category:<10s} {self.source:<16s} {self.detail}"


class Tracer:
    """Bounded in-memory event recorder with filters.

    >>> tracer = Tracer()
    >>> tracer.record(0.001, "send", "n0", "Submit -> coordinator")
    >>> len(tracer.events)
    1
    """

    def __init__(self, max_events: int = 100_000) -> None:
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self._filters: list[Callable[[TraceEvent], bool]] = []

    def add_filter(self, predicate: Callable[[TraceEvent], bool]) -> None:
        """Only record events for which every predicate returns True."""
        self._filters.append(predicate)

    def record(
        self, time: float, category: str, source: str, detail: str, data: Any = None
    ) -> None:
        """Append one event (subject to filters and the size bound)."""
        event = TraceEvent(time=time, category=category, source=source, detail=detail, data=data)
        for predicate in self._filters:
            if not predicate(event):
                return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def by_category(self, category: str) -> list[TraceEvent]:
        """Events of one category, in time order."""
        return [e for e in self.events if e.category == category]

    def by_source(self, source: str) -> list[TraceEvent]:
        """Events from one actor, in time order."""
        return [e for e in self.events if e.source == source]

    def between(self, start: float, end: float) -> list[TraceEvent]:
        """Events with start <= time < end."""
        return [e for e in self.events if start <= e.time < end]

    def timeline(self, events: Iterable[TraceEvent] | None = None) -> str:
        """Render events (default: all) as a readable multi-line timeline."""
        chosen = self.events if events is None else list(events)
        return "\n".join(e.render() for e in chosen)

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()
        self.dropped = 0


def trace_network(sim: Simulator, network: Network, tracer: Tracer) -> None:
    """Wrap a network's send/multicast so every transmission is recorded.

    Events carry the destination, port, message type and size — enough to
    reconstruct a protocol exchange without dumping payloads.
    """
    original_send = network.send
    original_multicast = network.multicast

    def traced_send(src: str, dst: str, port: str, msg: Any, size: int) -> None:
        tracer.record(
            sim.now, "send", src, f"-> {dst} [{port}] {type(msg).__name__} ({size}B)", msg
        )
        original_send(src, dst, port, msg, size)

    def traced_multicast(src: str, group: str, port: str, msg: Any, size: int) -> None:
        members = len(network.members(group))
        tracer.record(
            sim.now,
            "multicast",
            src,
            f"-> {group} x{members} [{port}] {type(msg).__name__} ({size}B)",
            msg,
        )
        original_multicast(src, group, port, msg, size)

    network.send = traced_send  # type: ignore[method-assign]
    network.multicast = traced_multicast  # type: ignore[method-assign]
