"""CPU model.

Each simulated node owns one :class:`Cpu`: a FIFO server whose rate is
expressed in "processing-seconds per second" (1.0 = one saturated core;
the paper's coordinator is effectively single-threaded on its hot path).
Protocol code charges explicit costs — per message and per byte — when it
handles traffic; the calibration constants live in ``repro.calibration``.

The CPU percentages reported in the paper's figures (e.g. the 97.6% at the
In-memory Ring Paxos knee in Figure 1) map to :meth:`Cpu.utilization`.
"""

from __future__ import annotations

from typing import Any, Callable

from .server import FifoServer
from .simulator import Simulator

__all__ = ["Cpu"]


class Cpu(FifoServer):
    """A node's processor, measured in processing-seconds of demand.

    ``submit(cost, fn)`` runs ``fn`` once the processor has spent ``cost``
    seconds of compute on it, after all previously queued work.
    """

    __slots__ = ()

    def __init__(
        self,
        sim: Simulator,
        capacity: float = 1.0,
        name: str = "cpu",
        history_window: float = 30.0,
    ) -> None:
        super().__init__(sim, rate=capacity, name=name, history_window=history_window)

    @property
    def capacity(self) -> float:
        """Processing-seconds deliverable per simulated second."""
        return self.rate

    # Charge ``cost`` processor-seconds, then run ``fn(*args)``: exactly
    # FifoServer.submit, aliased at class level so the per-message hot path
    # skips a pure forwarding frame.
    execute: Callable[..., float] = FifoServer.submit
