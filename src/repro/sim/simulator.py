"""The discrete-event simulation kernel.

A :class:`Simulator` owns a simulated clock and an event queue. Components
schedule callbacks at future simulated times; :meth:`Simulator.run` pops
events in time order, advancing the clock instantaneously between them.
There is no wall-clock anywhere in the library: simulated seconds are the
only notion of time, which is what makes throughput/latency experiments
reproducible and hardware-independent (see DESIGN.md, substitution rule).
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import SimulationError
from .events import Event, EventQueue
from .rng import RandomStreams

__all__ = ["Simulator", "observe_simulators"]

# Observers notified whenever a Simulator is constructed. The observability
# layer (``repro.obs``) uses this to attach probes/profilers to simulators
# it never gets a direct reference to (e.g. those built inside benchmark
# runners). Empty by default, so normal runs pay nothing.
_simulator_observers: list[Callable[["Simulator"], None]] = []


def observe_simulators(callback: Callable[["Simulator"], None]) -> Callable[[], None]:
    """Call ``callback(sim)`` for every Simulator created from now on.

    Returns a zero-argument remover that uninstalls the observer.
    """
    _simulator_observers.append(callback)

    def remove() -> None:
        if callback in _simulator_observers:
            _simulator_observers.remove(callback)

    return remove


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all named random streams (see :class:`RandomStreams`).

    Example
    -------
    >>> sim = Simulator(seed=7)
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run(until=2.0)
    >>> (sim.now, fired)
    (2.0, ['hello'])
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.random = RandomStreams(seed)
        self._queue = EventQueue()
        self._events_executed = 0
        self._running = False
        self._probe = None  # ProbeBus | None; None keeps the hot path bare
        if _simulator_observers:
            for callback in list(_simulator_observers):
                callback(self)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def probe(self):
        """The attached :class:`~repro.obs.ProbeBus`, or None."""
        return self._probe

    def attach_probe(self, bus) -> None:
        """Publish kernel events (``sim.event``) to ``bus``."""
        self._probe = bus

    def detach_probe(self) -> None:
        """Stop publishing kernel events."""
        self._probe = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self._queue.push(self.now + delay, fn, args)

    def at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock is already at t={self.now!r}"
            )
        return self._queue.push(time, fn, args)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError("event queue produced an event in the past")
        self.now = event.time
        self._events_executed += 1
        if self._probe is not None and self._probe.wants("sim.event"):
            fn = event.fn
            self._probe.emit(
                "sim.event",
                self.now,
                getattr(fn, "__qualname__", None) or repr(fn),
                seq=event.seq,
            )
        event.fire()
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue empties, ``until`` passes, or the budget.

        When ``until`` is given the clock is advanced exactly to ``until``
        on return (even if the last event fired earlier), so back-to-back
        ``run(until=...)`` calls partition simulated time cleanly.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        try:
            executed = 0
            exhausted = True
            while True:
                if max_events is not None and executed >= max_events:
                    exhausted = False  # stopped by budget: events remain
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                executed += 1
            if exhausted and until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    @property
    def events_executed(self) -> int:
        """Total number of events executed since construction."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events currently queued."""
        return len(self._queue)
