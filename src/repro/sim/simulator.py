"""The discrete-event simulation kernel.

A :class:`Simulator` owns a simulated clock and an event queue. Components
schedule callbacks at future simulated times; :meth:`Simulator.run` pops
events in time order, advancing the clock instantaneously between them.
There is no wall-clock anywhere in the library: simulated seconds are the
only notion of time, which is what makes throughput/latency experiments
reproducible and hardware-independent (see DESIGN.md, substitution rule).
"""

from __future__ import annotations

import sys
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable

from ..errors import SimulationError
from .events import Event, EventQueue
from .rng import RandomStreams

__all__ = ["Simulator", "observe_simulators"]

# Observers notified whenever a Simulator is constructed. The observability
# layer (``repro.obs``) uses this to attach probes/profilers to simulators
# it never gets a direct reference to (e.g. those built inside benchmark
# runners). Empty by default, so normal runs pay nothing.
_simulator_observers: list[Callable[["Simulator"], None]] = []


def observe_simulators(callback: Callable[["Simulator"], None]) -> Callable[[], None]:
    """Call ``callback(sim)`` for every Simulator created from now on.

    Returns a zero-argument remover that uninstalls the observer.
    """
    _simulator_observers.append(callback)

    def remove() -> None:
        if callback in _simulator_observers:
            _simulator_observers.remove(callback)

    return remove


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all named random streams (see :class:`RandomStreams`).

    Example
    -------
    >>> sim = Simulator(seed=7)
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run(until=2.0)
    >>> (sim.now, fired)
    (2.0, ['hello'])
    """

    # Fixed layout: `self.now` / `self._heap` / `self._probe` are read on
    # every simulated event, and slot access is measurably cheaper than a
    # dict lookup at that frequency.
    __slots__ = (
        "now", "random", "_queue", "_heap", "_seq",
        "_events_executed", "_running", "_probe",
    )

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.random = RandomStreams(seed)
        self._queue = EventQueue()
        # Aliases of the queue's heap list and seq counter: EventQueue
        # never rebinds either, so post/post_at can skip a pointer hop on
        # the hottest scheduling path.
        self._heap = self._queue._heap
        self._seq = self._queue._seq
        self._events_executed = 0
        self._running = False
        self._probe = None  # ProbeBus | None; None keeps the hot path bare
        if _simulator_observers:
            for callback in list(_simulator_observers):
                callback(self)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def probe(self):
        """The attached :class:`~repro.obs.ProbeBus`, or None."""
        return self._probe

    def attach_probe(self, bus) -> None:
        """Publish kernel events (``sim.event``) to ``bus``."""
        self._probe = bus

    def detach_probe(self) -> None:
        """Stop publishing kernel events."""
        self._probe = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` simulated seconds from now.

        Returns the cancellable :class:`Event` handle. Use this (or
        :meth:`at`) for timers that may be cancelled; use :meth:`post` /
        :meth:`post_at` for fire-and-forget callbacks on hot paths.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self._queue.push(self.now + delay, fn, args)

    def at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock is already at t={self.now!r}"
            )
        return self._queue.push(time, fn, args)

    def post(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Fast path: run ``fn(*args)`` after ``delay``; not cancellable.

        Identical ordering semantics to :meth:`schedule` (same time/seq
        keys), but no :class:`Event` is allocated and nothing is returned.
        The simulated substrate's hot paths (message legs, queue
        completions) all schedule through here; roughly 95% of events in a
        protocol run are never cancelled and never need the handle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        # push_fast inlined (same package): one call frame less on the
        # single hottest function in a protocol run.
        _heappush(self._heap, (self.now + delay, next(self._seq), fn, args, None))

    def post_at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Fast path: run ``fn(*args)`` at absolute ``time``; not cancellable."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock is already at t={self.now!r}"
            )
        _heappush(self._heap, (time, next(self._seq), fn, args, None))

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty."""
        entry = self._queue.pop_entry()
        if entry is None:
            return False
        time = entry[0]
        if time < self.now:
            raise SimulationError("event queue produced an event in the past")
        self.now = time
        self._events_executed += 1
        if self._probe is not None and self._probe.wants("sim.event"):
            fn = entry[2]
            self._probe.emit(
                "sim.event",
                time,
                getattr(fn, "__qualname__", None) or repr(fn),
                seq=entry[1],
            )
        entry[2](*entry[3])
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue empties, ``until`` passes, or the budget.

        When ``until`` is given the clock is advanced exactly to ``until``
        on return (even if the last event fired earlier), so back-to-back
        ``run(until=...)`` calls partition simulated time cleanly.

        This is the simulator's hottest loop, so it is fused: one heap
        inspection per event (peek the top, then pop it) instead of the
        ``peek_time()`` + ``step()``/``pop()`` pair, with the heap and the
        cancellation filter inlined. Semantics are identical to calling
        :meth:`step` in a loop.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        try:
            # Inlined from EventQueue (same package): entries are
            # (time, seq, fn, args, event-or-None), cancelled entries are
            # dropped lazily at the top — see events.py.
            queue = self._queue
            heap = queue._heap
            heappop = _heappop
            # Hoist the optional budget out of the loop: an absent budget
            # becomes maxsize, so the body carries one plain comparison.
            # No past-time check in either loop: every insert path
            # (schedule/at/post/post_at) already rejects times behind the
            # clock, and the heap only hands times out in order.
            budget = max_events if max_events is not None else sys.maxsize
            exhausted = True
            if until is None and max_events is None:
                # Run-to-empty variant (the overwhelmingly common call):
                # nothing ever needs to stay on the heap, so pop first and
                # skip the peek, and there is no budget to compare against.
                while heap:
                    time, seq, fn, args, event = heappop(heap)
                    if event is not None:
                        if event.cancelled:
                            queue._cancelled -= 1
                            continue
                        event.consumed = True
                    self.now = time
                    executed += 1
                    # Re-read the probe every iteration: callbacks may
                    # attach or detach a bus mid-run. One test when absent.
                    probe = self._probe
                    if probe is not None and probe.wants("sim.event"):
                        probe.emit(
                            "sim.event",
                            time,
                            getattr(fn, "__qualname__", None) or repr(fn),
                            seq=seq,
                        )
                    # Empty-args callbacks (completion ticks, timer pokes)
                    # take the plain CALL path instead of CALL_FUNCTION_EX.
                    if args:
                        fn(*args)
                    else:
                        fn()
            elif until is None:
                # Unbounded-time variant with an event budget.
                while heap:
                    if executed >= budget:
                        exhausted = False  # stopped by budget: events remain
                        break
                    time, seq, fn, args, event = heappop(heap)
                    if event is not None:
                        if event.cancelled:
                            queue._cancelled -= 1
                            continue
                        event.consumed = True
                    self.now = time
                    executed += 1
                    probe = self._probe
                    if probe is not None and probe.wants("sim.event"):
                        probe.emit(
                            "sim.event",
                            time,
                            getattr(fn, "__qualname__", None) or repr(fn),
                            seq=seq,
                        )
                    # Empty-args callbacks (completion ticks, timer pokes)
                    # take the plain CALL path instead of CALL_FUNCTION_EX.
                    if args:
                        fn(*args)
                    else:
                        fn()
            else:
                while heap:
                    if executed >= budget:
                        exhausted = False
                        break
                    time, seq, fn, args, event = heap[0]
                    if event is not None and event.cancelled:
                        heappop(heap)
                        queue._cancelled -= 1
                        continue
                    if time > until:
                        break
                    heappop(heap)
                    if event is not None:
                        event.consumed = True
                    self.now = time
                    executed += 1
                    probe = self._probe
                    if probe is not None and probe.wants("sim.event"):
                        probe.emit(
                            "sim.event",
                            time,
                            getattr(fn, "__qualname__", None) or repr(fn),
                            seq=seq,
                        )
                    # Empty-args callbacks (completion ticks, timer pokes)
                    # take the plain CALL path instead of CALL_FUNCTION_EX.
                    if args:
                        fn(*args)
                    else:
                        fn()
            if exhausted and until is not None and until > self.now:
                self.now = until
        finally:
            self._events_executed += executed
            self._running = False

    @property
    def events_executed(self) -> int:
        """Total number of events executed since construction."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events currently queued."""
        return len(self._queue)
