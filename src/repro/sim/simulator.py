"""The discrete-event simulation kernel.

A :class:`Simulator` owns a simulated clock and an event queue. Components
schedule callbacks at future simulated times; :meth:`Simulator.run` pops
events in time order, advancing the clock instantaneously between them.
There is no wall-clock anywhere in the library: simulated seconds are the
only notion of time, which is what makes throughput/latency experiments
reproducible and hardware-independent (see DESIGN.md, substitution rule).

The queue is the calendar queue of ``events.py``: events live in time
buckets and :meth:`Simulator.run` drains one sorted bucket *batch* at a
time instead of heap-popping per event. The batch being drained lives on
the queue itself (``_batch`` plus the ``_bi`` read index, kept current
between callbacks), so ``EventQueue.peek_entry`` — and therefore the
completion strips in ``server.py`` — always see the exact global
``(time, seq)`` frontier even mid-run.
"""

from __future__ import annotations

import sys
from heapq import heappush as _heappush
from typing import Any, Callable

from ..errors import SimulationError
from .events import _MASK, NBUCKETS as _NB, Event, EventQueue
from .rng import RandomStreams

__all__ = ["Simulator", "observe_simulators"]

# Observers notified whenever a Simulator is constructed. The observability
# layer (``repro.obs``) uses this to attach probes/profilers to simulators
# it never gets a direct reference to (e.g. those built inside benchmark
# runners). Empty by default, so normal runs pay nothing.
_simulator_observers: list["_Registration"] = []


class _Registration:
    """One observer registration; a unique token per ``observe_*`` call.

    Registries store these instead of raw callbacks so that removal can
    key on the *registration* (identity semantics — no ``__eq__``), not
    the callback value: registering the same callback twice yields two
    independent removers, and each remover is idempotent.
    """

    __slots__ = ("callback",)

    def __init__(self, callback: Callable[..., None]) -> None:
        self.callback = callback


def _register_observer(
    registry: list[_Registration], callback: Callable[..., None]
) -> Callable[[], None]:
    """Append ``callback`` to ``registry``; return its idempotent remover."""
    registration = _Registration(callback)
    registry.append(registration)

    def remove() -> None:
        try:
            registry.remove(registration)  # identity match on the token
        except ValueError:
            pass  # already removed: removers are idempotent

    return remove


def observe_simulators(callback: Callable[["Simulator"], None]) -> Callable[[], None]:
    """Call ``callback(sim)`` for every Simulator created from now on.

    Returns a zero-argument remover that uninstalls this registration
    (and only this one: double-registering the same callback yields two
    independent removers, each safe to call more than once).
    """
    return _register_observer(_simulator_observers, callback)


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all named random streams (see :class:`RandomStreams`).

    Example
    -------
    >>> sim = Simulator(seed=7)
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run(until=2.0)
    >>> (sim.now, fired)
    (2.0, ['hello'])
    """

    # Fixed layout: `self.now` / the queue aliases / `self._probe` are read
    # on every simulated event, and slot access is measurably cheaper than
    # a dict lookup at that frequency.
    __slots__ = (
        "now", "random", "_queue", "_ring", "_ids", "_reentry", "_overflow",
        "_seq", "_events_executed", "_running", "_run_until", "_probe",
    )

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.random = RandomStreams(seed)
        self._queue = EventQueue()
        # Aliases of the queue's tier lists and seq counter: EventQueue
        # never rebinds them (resizes mutate in place), so post/post_at can
        # skip a pointer hop on the hottest scheduling path. The width and
        # cursor DO change on resize and are always read via the queue.
        self._ring = self._queue._ring
        self._ids = self._queue._ids
        self._reentry = self._queue._reentry
        self._overflow = self._queue._overflow
        self._seq = self._queue._seq
        self._events_executed = 0
        self._running = False
        self._run_until: float | None = None  # active run(until=...) bound
        self._probe = None  # ProbeBus | None; None keeps the hot path bare
        if _simulator_observers:
            for registration in list(_simulator_observers):
                registration.callback(self)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def probe(self):
        """The attached :class:`~repro.obs.ProbeBus`, or None."""
        return self._probe

    def attach_probe(self, bus) -> None:
        """Publish kernel events (``sim.event``) to ``bus``."""
        self._probe = bus

    def detach_probe(self) -> None:
        """Stop publishing kernel events."""
        self._probe = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` simulated seconds from now.

        Returns the cancellable :class:`Event` handle. Use this (or
        :meth:`at`) for timers that may be cancelled; use :meth:`post` /
        :meth:`post_at` for fire-and-forget callbacks on hot paths.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self._queue.push(self.now + delay, fn, args)

    def at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock is already at t={self.now!r}"
            )
        return self._queue.push(time, fn, args)

    def post(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Fast path: run ``fn(*args)`` after ``delay``; not cancellable.

        Identical ordering semantics to :meth:`schedule` (same time/seq
        keys), but no :class:`Event` is allocated and nothing is returned.
        The simulated substrate's hot paths (message legs, queue
        completions) all schedule through here; roughly 95% of events in a
        protocol run are never cancelled and never need the handle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        # EventQueue._push_entry inlined (same package): one call frame
        # less on the single hottest function in a protocol run. The
        # common case — a near-future push into a ring bucket — is a
        # bare list append.
        t = self.now + delay
        queue = self._queue
        b = int(t * queue._winv)
        d = b - queue._cursor
        if 0 < d < _NB:
            ring = self._ring
            s = b & _MASK
            lst = ring[s]
            if lst:
                lst.append((t, next(self._seq), fn, args, None))
            else:
                if lst is None:
                    ring[s] = [(t, next(self._seq), fn, args, None)]
                else:
                    lst.append((t, next(self._seq), fn, args, None))
                _heappush(self._ids, b)
        elif d <= 0:
            self._reentry.append((t, next(self._seq), fn, args, None))
        else:
            _heappush(self._overflow, (t, next(self._seq), fn, args, None))

    def post_at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Fast path: run ``fn(*args)`` at absolute ``time``; not cancellable."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock is already at t={self.now!r}"
            )
        queue = self._queue
        b = int(time * queue._winv)
        d = b - queue._cursor
        if 0 < d < _NB:
            ring = self._ring
            s = b & _MASK
            lst = ring[s]
            if lst:
                lst.append((time, next(self._seq), fn, args, None))
            else:
                if lst is None:
                    ring[s] = [(time, next(self._seq), fn, args, None)]
                else:
                    lst.append((time, next(self._seq), fn, args, None))
                _heappush(self._ids, b)
        elif d <= 0:
            self._reentry.append((time, next(self._seq), fn, args, None))
        else:
            _heappush(self._overflow, (time, next(self._seq), fn, args, None))

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty."""
        entry = self._queue.pop_entry()
        if entry is None:
            return False
        time = entry[0]
        if time < self.now:
            raise SimulationError("event queue produced an event in the past")
        self.now = time
        self._events_executed += 1
        if self._probe is not None and self._probe.wants("sim.event"):
            fn = entry[2]
            self._probe.emit(
                "sim.event",
                time,
                getattr(fn, "__qualname__", None) or repr(fn),
                seq=entry[1],
            )
        entry[2](*entry[3])
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue empties, ``until`` passes, or the budget.

        When ``until`` is given the clock is advanced exactly to ``until``
        on return whenever no runnable event at or before ``until``
        remains (even if the last event fired earlier, and even if an
        event budget ran out at the same moment the window drained), so
        back-to-back ``run(until=...)`` calls partition simulated time
        cleanly. When a ``max_events`` budget stops the run while events
        at or before ``until`` are still pending, the clock stays at the
        last executed event.

        This is the simulator's hottest loop, so it is fused with the
        calendar queue (same package): the loop drains the queue's
        current sorted batch by index, keeping ``queue._bi`` current so
        that callbacks peeking the queue (completion strips) see the
        exact frontier. Pushes into the batch being drained land on the
        reentry list and are merge-sorted in front of the read index
        before the next event fires. Semantics are identical to calling
        :meth:`step` in a loop.

        ``max_events`` counts kernel dispatches; completions swept in a
        batch by a completion strip ride on one dispatch (they still
        count towards :attr:`events_executed`).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._run_until = until
        executed = 0
        queue = self._queue
        reentry = self._reentry
        next_batch = queue._next_batch
        merge = queue._merge_reentry
        # Hoist the optional budget out of the loop: an absent budget
        # becomes maxsize, so the body carries one plain comparison.
        # No past-time check in any loop: every insert path
        # (schedule/at/post/post_at) already rejects times behind the
        # clock, and batches are consumed in sorted order.
        budget = max_events if max_events is not None else sys.maxsize
        try:
            if until is None and max_events is None:
                # Run-to-empty variant (the overwhelmingly common call):
                # no budget or window to compare against, and executed
                # events are counted per batch segment instead of per
                # event (segment length minus cancelled skips).
                while True:
                    if reentry:
                        merge()
                    batch = queue._batch
                    bi = queue._bi
                    n = len(batch)
                    if bi >= n:
                        if next_batch() is None:
                            break
                        batch = queue._batch
                        bi = 0
                        n = len(batch)
                    start = bi
                    skipped = 0
                    # Probe re-read once per batch: a batch spans one
                    # bucket (a handful of events), so a mid-run attach
                    # takes effect within microseconds of simulated time.
                    probe = self._probe
                    wants = probe is not None and probe.wants("sim.event")
                    try:
                        while bi < n:
                            entry = batch[bi]
                            bi += 1
                            queue._bi = bi
                            time, seq, fn, args, event = entry
                            if event is not None:
                                if event.cancelled:
                                    skipped += 1
                                    continue
                                event.consumed = True
                            self.now = time
                            if wants:
                                probe.emit(
                                    "sim.event",
                                    time,
                                    getattr(fn, "__qualname__", None) or repr(fn),
                                    seq=seq,
                                )
                            # Empty-args callbacks (completion ticks, timer
                            # pokes) take the plain CALL path, not
                            # CALL_FUNCTION_EX.
                            if args:
                                fn(*args)
                            else:
                                fn()
                            if queue._batch is not batch:
                                # A callback's peek exhausted this batch
                                # and installed the next one; re-enter the
                                # outer loop to pick it up.
                                break
                            if reentry:
                                merge()
                                n = len(batch)
                    finally:
                        # try/finally is free on the no-exception path
                        # (zero-cost exceptions); this keeps the segment
                        # accounting exact when a callback raises.
                        executed += bi - start - skipped
                        if skipped:
                            queue._cancelled -= skipped
            elif until is None:
                # Unbounded-time variant with an event budget.
                stop = False
                while not stop:
                    if reentry:
                        merge()
                    batch = queue._batch
                    bi = queue._bi
                    n = len(batch)
                    if bi >= n:
                        if next_batch() is None:
                            break
                        batch = queue._batch
                        bi = 0
                        n = len(batch)
                    probe = self._probe
                    wants = probe is not None and probe.wants("sim.event")
                    while bi < n:
                        if executed >= budget:
                            stop = True  # budget spent: events remain queued
                            break
                        entry = batch[bi]
                        bi += 1
                        queue._bi = bi
                        time, seq, fn, args, event = entry
                        if event is not None:
                            if event.cancelled:
                                queue._cancelled -= 1
                                continue
                            event.consumed = True
                        self.now = time
                        executed += 1
                        if wants:
                            probe.emit(
                                "sim.event",
                                time,
                                getattr(fn, "__qualname__", None) or repr(fn),
                                seq=seq,
                            )
                        if args:
                            fn(*args)
                        else:
                            fn()
                        if queue._batch is not batch:
                            break
                        if reentry:
                            merge()
                            n = len(batch)
            else:
                # Bounded-time variant (with or without a budget). The
                # window check runs before the budget check so that a
                # simultaneously exhausted budget cannot mask "nothing
                # left to run before `until`" (the epilogue below peeks
                # the queue either way, so the clock lands on `until`
                # exactly when the window is drained).
                stop = False
                while not stop:
                    if reentry:
                        merge()
                    batch = queue._batch
                    bi = queue._bi
                    n = len(batch)
                    if bi >= n:
                        if next_batch() is None:
                            break
                        batch = queue._batch
                        bi = 0
                        n = len(batch)
                    probe = self._probe
                    wants = probe is not None and probe.wants("sim.event")
                    while bi < n:
                        entry = batch[bi]
                        if entry[0] > until:
                            # Reentry is merged before every event, so no
                            # earlier event can still be pending.
                            stop = True
                            break
                        if executed >= budget:
                            stop = True
                            break
                        bi += 1
                        queue._bi = bi
                        time, seq, fn, args, event = entry
                        if event is not None:
                            if event.cancelled:
                                queue._cancelled -= 1
                                continue
                            event.consumed = True
                        self.now = time
                        executed += 1
                        if wants:
                            probe.emit(
                                "sim.event",
                                time,
                                getattr(fn, "__qualname__", None) or repr(fn),
                                seq=seq,
                            )
                        if args:
                            fn(*args)
                        else:
                            fn()
                        if queue._batch is not batch:
                            break
                        if reentry:
                            merge()
                            n = len(batch)
                if until > self.now:
                    # Advance the clock to the end of the window iff no
                    # runnable event at or before `until` remains — this
                    # holds regardless of WHY the loop stopped, which is
                    # what fixes the budget-and-window-simultaneous case.
                    next_time = queue.peek_time()
                    if next_time is None or next_time > until:
                        self.now = until
                        # Drag the calendar cursor up to the clock so the
                        # idle window is not re-scanned bucket by bucket.
                        # Safe: every remaining entry has time > until,
                        # i.e. bucket >= int(until * winv) > b.
                        b = int(until * queue._winv) - 1
                        if b > queue._cursor:
                            queue._cursor = b
        finally:
            self._events_executed += executed
            self._running = False
            self._run_until = None

    @property
    def events_executed(self) -> int:
        """Total number of events executed since construction.

        Includes completions swept in batches by the resource models'
        completion strips (each sweep is one kernel dispatch but counts
        every completion it fires).
        """
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events currently queued.

        Completions held by a resource's completion strip are represented
        by that strip's single armed kernel event.
        """
        return len(self._queue)
